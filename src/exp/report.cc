#include "exp/report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace phantom::exp {

void print_header(const std::string& experiment_id, const std::string& title) {
  std::printf("\n=== %s — %s ===\n", experiment_id.c_str(), title.c_str());
}

void print_series(const std::string& name,
                  std::span<const sim::Sample> samples, double value_scale,
                  std::size_t max_rows) {
  std::printf("-- %s --\n", name.c_str());
  if (samples.empty()) {
    std::printf("   (empty)\n");
    return;
  }
  const std::size_t stride =
      samples.size() <= max_rows ? 1 : samples.size() / max_rows;
  for (std::size_t i = 0; i < samples.size(); i += stride) {
    std::printf("  t=%9.3fms  %10.3f\n", samples[i].time.milliseconds(),
                samples[i].value * value_scale);
  }
  const auto& last = samples.back();
  std::printf("  t=%9.3fms  %10.3f  (final)\n", last.time.milliseconds(),
              last.value * value_scale);
}

Table::Table(std::vector<std::string> header) {
  if (header.empty()) throw std::invalid_argument{"table needs columns"};
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != rows_[0].size()) {
    throw std::invalid_argument{"row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> width(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::printf(" ");
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      std::printf(" %-*s", static_cast<int>(width[c]), rows_[r][c].c_str());
    }
    std::printf("\n");
    if (r == 0) {
      std::printf(" ");
      for (std::size_t c = 0; c < width.size(); ++c) {
        std::printf(" %s", std::string(width[c], '-').c_str());
      }
      std::printf("\n");
    }
  }
}

bool write_series_csv(const std::string& path,
                      std::span<const sim::Sample> samples,
                      double value_scale) {
  std::ofstream out{path};
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  out << "time_ms,value\n";
  for (const sim::Sample& s : samples) {
    out << s.time.milliseconds() << ',' << s.value * value_scale << '\n';
  }
  return true;
}

void print_fault_log(std::span<const fault::AppliedFault> log) {
  std::printf("-- fault log --\n");
  if (log.empty()) {
    std::printf("   (none)\n");
    return;
  }
  for (const fault::AppliedFault& f : log) {
    std::printf("  t=%9.3fms  %s\n", f.time.milliseconds(),
                f.description.c_str());
  }
}

void print_violations(const fault::InvariantMonitor& monitor) {
  const auto& v = monitor.violations();
  if (v.empty()) {
    std::printf("-- invariants: OK (%llu checks, 0 violations) --\n",
                static_cast<unsigned long long>(monitor.checks_run()));
    return;
  }
  std::printf("-- invariants: %zu VIOLATION(S) in %llu checks --\n", v.size(),
              static_cast<unsigned long long>(monitor.checks_run()));
  for (const fault::InvariantViolation& iv : v) {
    std::printf("  t=%9.3fms  [%s] %s\n", iv.time.milliseconds(),
                iv.invariant.c_str(), iv.detail.c_str());
    if (!iv.recent_events.empty()) {
      std::printf("    flight recorder (last %zu events):\n",
                  iv.recent_events.size());
      for (const std::string& line : iv.recent_events) {
        std::printf("      %s\n", line.c_str());
      }
    }
  }
}

void maybe_dump_series(const std::string& experiment,
                       const std::string& series,
                       std::span<const sim::Sample> samples,
                       double value_scale) {
  const char* dir = std::getenv("PHANTOM_TRACE_DIR");
  if (dir == nullptr || *dir == '\0') return;
  write_series_csv(std::string{dir} + "/" + experiment + "_" + series + ".csv",
                   samples, value_scale);
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace phantom::exp
