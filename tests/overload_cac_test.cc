// Connection Admission Control and the resource-exhaustion fault
// grammar: per-reason refusals, multi-hop rollback, grandfathering,
// memsqueeze/vcstorm plan round-trips and injector validation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "exp/factories.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Time;
using topo::AbrNetwork;
using topo::OverloadOptions;

atm::AbrParams with_mcr(double mbps) {
  atm::AbrParams p;
  p.mcr = Rate::mbps(mbps);
  return p;
}

TEST(CacTest, RefusesWhenMcrBookingWouldOverrunTheLink) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);  // 150 Mb/s
  net.enable_overload_protection({});         // bookable: 0.9 * 150 = 135

  EXPECT_TRUE(net.try_add_session(sw, {}, dest, with_mcr(60)).admitted);
  EXPECT_TRUE(net.try_add_session(sw, {}, dest, with_mcr(60)).admitted);

  const auto refused = net.try_add_session(sw, {}, dest, with_mcr(60));
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedMcrBudget);
  EXPECT_EQ(refused.refused_at, sw);
  EXPECT_EQ(net.num_sessions(), 2u) << "a refused setup builds nothing";

  // A zero-MCR session books nothing and still gets in.
  EXPECT_TRUE(net.try_add_session(sw, {}, dest, with_mcr(0)).admitted);

  const auto totals = net.cac_totals();
  EXPECT_EQ(totals.admitted, 3u);
  EXPECT_EQ(totals.refused_mcr_budget, 1u);
  EXPECT_EQ(totals.refused_total(), 1u);
}

TEST(CacTest, RefusesWhenBufferHeadroomRunsOut) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  OverloadOptions oo;
  oo.buffer.budget_cells = 128;
  oo.cac.per_vc_buffer_cells = 64;  // headroom for exactly two VCs
  net.enable_overload_protection(oo);

  EXPECT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  EXPECT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  const auto refused = net.try_add_session(sw, {}, dest);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedBufferHeadroom);
  EXPECT_EQ(net.cac_totals().refused_buffer, 1u);
}

TEST(CacTest, RefusesAtTheVcTableBound) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  OverloadOptions oo;
  oo.cac.max_vcs = 2;
  net.enable_overload_protection(oo);

  EXPECT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  EXPECT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  const auto refused = net.try_add_session(sw, {}, dest);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedVcLimit);
  EXPECT_EQ(net.cac_totals().refused_vc_limit, 1u);
}

TEST(CacTest, MultiHopRefusalRollsBackUpstreamBookings) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw0 = net.add_switch("sw0");
  const auto sw1 = net.add_switch("sw1");
  const auto trunk = net.add_trunk(sw0, sw1);
  const auto dest = net.add_destination(sw1);
  net.enable_overload_protection({});

  // Fill sw1's destination port to the booking limit with a local
  // session, so the next multi-hop setup clears sw0 but dies at sw1.
  ASSERT_TRUE(net.try_add_session(sw1, {}, dest, with_mcr(135)).admitted);
  const std::size_t sw0_admitted = net.node(sw0).admitted_vcs();

  const auto refused = net.try_add_session(sw0, {trunk}, dest, with_mcr(10));
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedMcrBudget);
  EXPECT_EQ(refused.refused_at, sw1);
  EXPECT_EQ(net.node(sw0).admitted_vcs(), sw0_admitted)
      << "the first hop's booking must be rolled back";
  EXPECT_EQ(net.node(sw0).mcr_booked(0).bits_per_sec(), 0)
      << "no phantom MCR left booked on the trunk port";
  EXPECT_EQ(net.num_sessions(), 1u);
}

TEST(CacTest, ArmingGrandfathersExistingSessions) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  // Two sessions predate the armor; their MCRs must be honoured.
  net.add_session(sw, {}, dest, with_mcr(70));
  net.add_session(sw, {}, dest, with_mcr(60));
  net.enable_overload_protection({});

  EXPECT_EQ(net.node(sw).admitted_vcs(), 2u);
  EXPECT_EQ(net.cac_totals().admitted, 0u)
      << "grandfathering is bookkeeping, not a judged admission";

  // 130 of 135 Mb/s is already booked: a 10 Mb/s setup must be refused.
  const auto refused = net.try_add_session(sw, {}, dest, with_mcr(10));
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedMcrBudget);
  EXPECT_TRUE(net.try_add_session(sw, {}, dest, with_mcr(5)).admitted);
}

TEST(CacTest, SqueezeShrinksHeadroomAndRefusalsStayMonotone) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  OverloadOptions oo;
  oo.buffer.budget_cells = 512;
  oo.cac.per_vc_buffer_cells = 16;
  net.enable_overload_protection(oo);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  }

  // Squeeze to a tenth: 51 effective cells cannot back a fifth VC.
  net.squeeze_buffers(0.1);
  const auto refused = net.try_add_session(sw, {}, dest);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.verdict, atm::AdmitVerdict::kRefusedBufferHeadroom);

  fault::InvariantMonitor monitor{sim, net};
  monitor.check_now();  // refusal counters snapshot

  // Restoring the budget re-opens admission without "un-refusing":
  // counters stay monotone and the monitor agrees.
  net.squeeze_buffers(1.0);
  EXPECT_TRUE(net.try_add_session(sw, {}, dest).admitted);
  EXPECT_EQ(net.cac_totals().refused_buffer, 1u);
  monitor.check_now();
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(CacTest, AdmittedMcrSurvivesOverloadedRun) {
  sim::Simulator sim{7};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  OverloadOptions oo;
  oo.buffer.budget_cells = 512;
  net.enable_overload_protection(oo);

  // Offer far more contracted load than the link carries; CAC trims it
  // to a servable population.
  atm::AbrParams contracted = with_mcr(12);
  contracted.frame_cells = 16;
  int admitted = 0;
  for (int i = 0; i < 30; ++i) {
    if (net.try_add_session(sw, {}, dest, contracted).admitted) ++admitted;
  }
  EXPECT_GT(admitted, 0);
  EXPECT_GT(net.cac_totals().refused_total(), 0u);

  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(150));
  monitor.enable_mcr_retention_check({});  // after warm-up
  sim.run_until(Time::ms(400));
  monitor.check_now();
  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front().invariant << ": "
      << monitor.violations().front().detail;
}

// --- memsqueeze / vcstorm grammar and injector validation ---

TEST(OverloadFaultPlanTest, MemsqueezeAndVcstormRoundTripThroughSpec) {
  fault::FaultPlan plan;
  plan.memsqueeze(Time::ms(100), 0.35, Time::ms(50))
      .vcstorm(Time::ms(120), 7, Time::ms(80))
      .memsqueeze(Time::ms(300), 0.5)
      .vcstorm(Time::ms(400), 16);

  const std::string spec = plan.to_spec();
  EXPECT_EQ(spec,
            "memsqueeze:100:0.35:50;vcstorm:120:7:80;"
            "memsqueeze:300:0.5;vcstorm:400:16");
  EXPECT_EQ(fault::FaultPlan::parse(spec), plan);
}

TEST(OverloadFaultPlanTest, RejectsBadFractionsCountsAndDuplicates) {
  EXPECT_THROW((void)fault::FaultPlan{}.memsqueeze(Time::ms(1), 0.0),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan{}.memsqueeze(Time::ms(1), 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan{}.vcstorm(Time::ms(1), 0),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("memsqueeze:100:1.2"),
               std::invalid_argument);
  EXPECT_THROW((void)fault::FaultPlan::parse("vcstorm:100:2.5"),
               std::invalid_argument);

  // Duplicate rejection names the repeat's position, 1-based.
  try {
    (void)fault::FaultPlan::parse("memsqueeze:100:0.5;memsqueeze:100:0.7");
    FAIL() << "duplicate memsqueeze at the same instant must be rejected";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate memsqueeze"), std::string::npos) << what;
    EXPECT_NE(what.find("first occurrence is event 1"), std::string::npos)
        << what;
    EXPECT_NE(what.find("in event 2"), std::string::npos) << what;
  }

  // Same instant, different target: not a duplicate.
  EXPECT_NO_THROW(
      (void)fault::FaultPlan::parse("outage:trunk0:100:50;outage:trunk1:100:50"));
  // Same kind+target+instant with different parameters still is.
  EXPECT_THROW(
      (void)fault::FaultPlan::parse("outage:trunk0:100:50;outage:trunk0:100:60"),
      std::invalid_argument);
}

TEST(OverloadFaultPlanTest, InjectorDemandsOverloadProtection) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  net.add_session(sw, {}, dest);

  fault::FaultInjector injector{sim, net};
  fault::FaultPlan squeeze;
  squeeze.memsqueeze(Time::ms(10), 0.5);
  EXPECT_THROW(injector.apply(squeeze), std::invalid_argument)
      << "memsqueeze without a bounded buffer is meaningless";

  net.enable_overload_protection({});
  EXPECT_NO_THROW(injector.apply(squeeze));
}

TEST(OverloadFaultPlanTest, VcstormNeedsASessionToClone) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  (void)net.add_destination(sw);
  net.enable_overload_protection({});

  fault::FaultInjector injector{sim, net};
  fault::FaultPlan storm;
  storm.vcstorm(Time::ms(10), 4);
  EXPECT_THROW(injector.apply(storm), std::invalid_argument);
}

TEST(OverloadFaultPlanTest, MemsqueezeWindowSqueezesAndRestores) {
  sim::Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  net.add_session(sw, {}, dest);
  OverloadOptions oo;
  oo.buffer.budget_cells = 1000;
  net.enable_overload_protection(oo);

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.memsqueeze(Time::ms(10), 0.25,
                                               Time::ms(20)));
  const auto* bm = net.node(sw).buffer_manager();
  ASSERT_NE(bm, nullptr);

  sim.run_until(Time::ms(15));
  EXPECT_EQ(bm->effective_budget(), 250u);
  sim.run_until(Time::ms(35));
  EXPECT_EQ(bm->effective_budget(), 1000u);
  ASSERT_EQ(injector.log().size(), 2u);
  EXPECT_NE(injector.log()[0].description.find("squeeze begins"),
            std::string::npos);
  EXPECT_NE(injector.log()[1].description.find("squeeze ends"),
            std::string::npos);
}

TEST(OverloadFaultPlanTest, VcstormOffersAdmitsAndTearsDown) {
  sim::Simulator sim{3};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw);
  net.add_session(sw, {}, dest, with_mcr(5));
  OverloadOptions oo;
  oo.buffer.budget_cells = 256;
  oo.cac.per_vc_buffer_cells = 32;  // headroom for 8 VCs total
  net.enable_overload_protection(oo);

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.vcstorm(Time::ms(50), 20, Time::ms(100)));
  net.start_all(Time::zero(), Time::zero());

  sim.run_until(Time::ms(60));
  EXPECT_GT(net.num_sessions(), 1u) << "some storm setups must get in";
  EXPECT_LE(net.num_sessions(), 8u) << "headroom bounds the storm";
  EXPECT_GT(net.cac_totals().refused_total(), 0u);
  ASSERT_FALSE(injector.log().empty());
  EXPECT_NE(injector.log().front().description.find("vc storm offers 20"),
            std::string::npos)
      << injector.log().front().description;

  sim.run_until(Time::ms(200));
  bool saw_teardown = false;
  for (const auto& entry : injector.log()) {
    saw_teardown |=
        entry.description.find("storm sessions torn down") != std::string::npos;
  }
  EXPECT_TRUE(saw_teardown);
  EXPECT_GT(net.vcs_reaped(), 0u) << "teardown evicts the storm VCs' state";
}

}  // namespace
}  // namespace phantom
