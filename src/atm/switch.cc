#include "atm/switch.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace phantom::atm {

void ReaperConfig::validate() const {
  if (timeout <= sim::Time::zero())
    throw std::invalid_argument{"reaper timeout must be positive"};
  if (period <= sim::Time::zero())
    throw std::invalid_argument{"reaper period must be positive"};
}

void CacConfig::validate() const {
  if (mcr_utilization <= 0.0 || mcr_utilization > 1.0)
    throw std::invalid_argument{"mcr_utilization must be in (0, 1]"};
  if (per_vc_buffer_cells < 1)
    throw std::invalid_argument{"per_vc_buffer_cells must be at least 1"};
  if (max_vcs < 1)
    throw std::invalid_argument{"max_vcs must be at least 1"};
}

std::string to_string(AdmitVerdict v) {
  switch (v) {
    case AdmitVerdict::kAdmitted: return "admitted";
    case AdmitVerdict::kRefusedVcLimit: return "vc-limit";
    case AdmitVerdict::kRefusedMcrBudget: return "mcr-budget";
    case AdmitVerdict::kRefusedBufferHeadroom: return "buffer-headroom";
    case AdmitVerdict::kRefusedPressure: return "pressure";
  }
  return "?";
}

std::size_t Switch::add_port(sim::Rate rate, std::size_t queue_limit,
                             Link link,
                             std::unique_ptr<PortController> controller,
                             QueueDiscipline discipline) {
  ports_.push_back(std::make_unique<OutputPort>(
      *sim_, rate, queue_limit, link, std::move(controller), discipline));
  mcr_booked_.push_back(sim::Rate::zero());
  if (buffer_mgr_) {
    ports_.back()->attach_buffer_manager(buffer_mgr_.get(),
                                         buffer_mgr_->register_port());
  }
  if (event_log_ != nullptr) {
    ports_.back()->set_event_log(event_log_, obs_node_,
                                 static_cast<int>(ports_.size() - 1));
  }
  return ports_.size() - 1;
}

void Switch::set_event_log(obs::EventLog* log, int node) {
  event_log_ = log;
  obs_node_ = static_cast<std::int16_t>(node);
  if (log != nullptr) log->set_node_name(obs_node_, name_);
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    ports_[i]->set_event_log(log, node, static_cast<int>(i));
  }
}

void Switch::record_rm_event(obs::EventKind kind, const Cell& cell,
                             std::size_t forward_port) {
  if constexpr (obs::kObsEnabled) {
    if (event_log_ == nullptr) return;
    obs::Event e;
    e.time = sim_->now();
    e.kind = kind;
    e.node = obs_node_;
    e.port = static_cast<std::int16_t>(forward_port);
    e.vc = cell.vc;
    e.a = cell.er.mbits_per_sec();
    e.b = cell.ccr.mbits_per_sec();
    e.c = ports_[forward_port]->controller().fair_share().mbits_per_sec();
    event_log_->record(e);
  } else {
    (void)kind;
    (void)cell;
    (void)forward_port;
  }
}

void Switch::record_policer_event(const Cell& cell, std::uint8_t verdict) {
  if constexpr (obs::kObsEnabled) {
    if (event_log_ == nullptr) return;
    obs::Event e;
    e.time = sim_->now();
    e.kind = obs::EventKind::kPolicerVerdict;
    e.detail = verdict;
    e.node = obs_node_;
    e.vc = cell.vc;
    event_log_->record(e);
  } else {
    (void)cell;
    (void)verdict;
  }
}

void Switch::record_cac_refusal(int vc, sim::Rate mcr, AdmitVerdict verdict) {
  if constexpr (obs::kObsEnabled) {
    if (event_log_ == nullptr) return;
    obs::Event e;
    e.time = sim_->now();
    e.kind = obs::EventKind::kCacRefusal;
    e.detail = static_cast<std::uint8_t>(verdict);
    e.node = obs_node_;
    e.vc = vc;
    e.a = mcr.mbits_per_sec();
    event_log_->record(e);
  } else {
    (void)vc;
    (void)mcr;
    (void)verdict;
  }
}

void Switch::enable_buffer_management(BufferConfig config) {
  config.validate();
  buffer_mgr_ = std::make_unique<BufferManager>(config);
  for (auto& port : ports_) {
    port->attach_buffer_manager(buffer_mgr_.get(),
                                buffer_mgr_->register_port());
  }
}

void Switch::enable_admission_control(CacConfig config) {
  config.validate();
  cac_config_ = config;
  cac_enabled_ = true;
}

void Switch::record_admission(int vc, sim::Rate mcr,
                              std::size_t forward_port) {
  admitted_[vc] = Admission{mcr, forward_port};
  mcr_booked_.at(forward_port) += mcr;
  if (buffer_mgr_) buffer_mgr_->set_vc_mcr(vc, mcr, sim_->now());
}

bool Switch::release_admission(int vc) {
  const auto it = admitted_.find(vc);
  if (it == admitted_.end()) return false;
  mcr_booked_.at(it->second.forward_port) -= it->second.mcr;
  // Guard against float drift pushing a fully-released booking negative.
  if (mcr_booked_.at(it->second.forward_port) < sim::Rate::zero())
    mcr_booked_.at(it->second.forward_port) = sim::Rate::zero();
  admitted_.erase(it);
  return true;
}

AdmitVerdict Switch::admit_vc(int vc, sim::Rate mcr,
                              std::size_t forward_port) {
  if (forward_port >= ports_.size())
    throw std::out_of_range{"admit_vc: port index out of range"};
  if (admitted_.count(vc) > 0)
    throw std::invalid_argument{"admit_vc: VC already admitted on " + name_};
  if (!cac_enabled_) {
    // CAC off: everything is admitted, but the booking is still kept so
    // MCR protection and eviction work, and so arming CAC later sees
    // the true commitment.
    record_admission(vc, mcr, forward_port);
    return AdmitVerdict::kAdmitted;
  }
  // Degradation ladder, first rung: a switch already shedding admitted
  // traffic must not take on more commitments, whatever the books say.
  if (buffer_mgr_ &&
      buffer_mgr_->level() >= DegradationLevel::kShedding) {
    ++cac_counters_.refused_pressure;
    record_cac_refusal(vc, mcr, AdmitVerdict::kRefusedPressure);
    return AdmitVerdict::kRefusedPressure;
  }
  if (admitted_.size() >= cac_config_.max_vcs) {
    ++cac_counters_.refused_vc_limit;
    record_cac_refusal(vc, mcr, AdmitVerdict::kRefusedVcLimit);
    return AdmitVerdict::kRefusedVcLimit;
  }
  const sim::Rate booked = mcr_booked_.at(forward_port);
  const sim::Rate limit =
      ports_[forward_port]->rate() * cac_config_.mcr_utilization;
  if (booked + mcr > limit) {
    ++cac_counters_.refused_mcr_budget;
    record_cac_refusal(vc, mcr, AdmitVerdict::kRefusedMcrBudget);
    return AdmitVerdict::kRefusedMcrBudget;
  }
  if (buffer_mgr_) {
    const std::size_t needed =
        (admitted_.size() + 1) * cac_config_.per_vc_buffer_cells;
    if (needed > buffer_mgr_->effective_budget()) {
      ++cac_counters_.refused_buffer;
      record_cac_refusal(vc, mcr, AdmitVerdict::kRefusedBufferHeadroom);
      return AdmitVerdict::kRefusedBufferHeadroom;
    }
  }
  ++cac_counters_.admitted;
  record_admission(vc, mcr, forward_port);
  return AdmitVerdict::kAdmitted;
}

void Switch::force_admit_vc(int vc, sim::Rate mcr,
                            std::size_t forward_port) {
  if (forward_port >= ports_.size())
    throw std::out_of_range{"force_admit_vc: port index out of range"};
  if (admitted_.count(vc) > 0) return;  // idempotent grandfathering
  record_admission(vc, mcr, forward_port);
}

bool Switch::unroute_vc(int vc) {
  evict_vc(vc);  // admission booking, policer state, activity stamp
  return routes_.erase(vc) > 0;
}

void Switch::route_vc(int vc, std::size_t forward_port,
                      std::size_t backward_port) {
  if (forward_port >= ports_.size() || backward_port >= ports_.size()) {
    throw std::out_of_range{"route_vc: port index out of range"};
  }
  const auto [_, inserted] = routes_.emplace(vc, Route{forward_port, backward_port});
  if (!inserted) {
    throw std::invalid_argument{"route_vc: VC already routed on " + name_};
  }
}

void Switch::enable_policing(PolicerConfig config) {
  policer_ = std::make_unique<Policer>(config);
}

void Switch::enable_reaping(ReaperConfig config) {
  config.validate();
  reaper_config_ = config;
  if (!reaping_) {
    reaping_ = true;
    sim_->schedule(reaper_config_.period, [this] { on_reap_tick(); });
  }
}

void Switch::on_reap_tick() {
  // Collect first, then evict in VC order: eviction order must not
  // depend on hash-table iteration so runs stay bit-reproducible.
  std::vector<int> dead;
  const sim::Time now = sim_->now();
  for (const auto& [vc, last] : last_activity_) {
    if (now - last > reaper_config_.timeout) dead.push_back(vc);
  }
  std::sort(dead.begin(), dead.end());
  for (const int vc : dead) evict_vc(vc);
  sim_->schedule(reaper_config_.period, [this] { on_reap_tick(); });
}

bool Switch::evict_vc(int vc) {
  const bool had_activity = last_activity_.erase(vc) > 0;
  const bool had_policer_state = policer_ && policer_->evict_vc(vc);
  const bool had_admission = release_admission(vc);
  const bool had_buffer_state = buffer_mgr_ && buffer_mgr_->evict_vc(vc);
  if (!had_activity && !had_policer_state && !had_admission &&
      !had_buffer_state)
    return false;
  ++vcs_reaped_;
  // Both directions' controllers get the notification: session-count
  // and per-VC state can live on either side of the route.
  if (const auto it = routes_.find(vc); it != routes_.end()) {
    ports_[it->second.forward_port]->controller().vc_expired(vc);
    ports_[it->second.backward_port]->controller().vc_expired(vc);
  }
  return true;
}

void Switch::register_metrics(obs::Registry& reg, const std::string& prefix) {
  reg.add_counter({prefix + ".unrouted_cells", "switch.unrouted_cells",
                   obs::MetricType::kCounter, "cells", "Switch",
                   "cells that arrived for a VC with no route"},
                  [this] { return unrouted_; });
  reg.add_counter({prefix + ".rm_cells_sanitized", "switch.rm_cells_sanitized",
                   obs::MetricType::kCounter, "cells", "Switch",
                   "RM cells whose ER/CCR fields were clamped on ingest"},
                  [this] { return rm_sanitized_; });
  reg.add_counter({prefix + ".vcs_reaped", "switch.vcs_reaped",
                   obs::MetricType::kCounter, "vcs", "Switch",
                   "VCs evicted (reaper sweeps + explicit teardowns)"},
                  [this] { return vcs_reaped_; });
  reg.add_gauge({prefix + ".active_vcs", "switch.active_vcs",
                 obs::MetricType::kGauge, "vcs", "Switch",
                 "VCs with a live activity timestamp"},
                [this] { return static_cast<double>(active_vcs()); });
  reg.add_gauge({prefix + ".admitted_vcs", "switch.admitted_vcs",
                 obs::MetricType::kGauge, "vcs", "Switch",
                 "VCs currently holding an admission record"},
                [this] { return static_cast<double>(admitted_.size()); });
  reg.add_counter({prefix + ".cac.admitted", "switch.cac.admitted",
                   obs::MetricType::kCounter, "setups", "Switch",
                   "VC setups admitted by CAC"},
                  [this] { return cac_counters_.admitted; });
  reg.add_counter({prefix + ".cac.refused_vc_limit",
                   "switch.cac.refused_vc_limit", obs::MetricType::kCounter,
                   "setups", "Switch", "setups refused: VC table at max_vcs"},
                  [this] { return cac_counters_.refused_vc_limit; });
  reg.add_counter(
      {prefix + ".cac.refused_mcr_budget", "switch.cac.refused_mcr_budget",
       obs::MetricType::kCounter, "setups", "Switch",
       "setups refused: MCR sum would exceed the booking limit"},
      [this] { return cac_counters_.refused_mcr_budget; });
  reg.add_counter({prefix + ".cac.refused_buffer", "switch.cac.refused_buffer",
                   obs::MetricType::kCounter, "setups", "Switch",
                   "setups refused: cell memory cannot back another VC"},
                  [this] { return cac_counters_.refused_buffer; });
  reg.add_counter({prefix + ".cac.refused_pressure",
                   "switch.cac.refused_pressure", obs::MetricType::kCounter,
                   "setups", "Switch",
                   "setups refused: switch already shedding"},
                  [this] { return cac_counters_.refused_pressure; });
  if (policer_) policer_->register_metrics(reg, prefix + ".policer");
  if (buffer_mgr_) buffer_mgr_->register_metrics(reg, prefix + ".buffers");
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    ports_[i]->register_metrics(reg, prefix + ".port" + std::to_string(i));
  }
}

void Switch::sanitize_rm(Cell& cell, sim::Rate link_rate) {
  // A switch must never let a hostile RM field reach controller state:
  // EPRCA-family algorithms *learn* from CCR, and NaN survives every
  // std::min along a feedback chain. ER claims above the physical link
  // rate are meaningless (the port cannot serve them) and are exactly
  // what a forger inflates; claims below zero (or NaN) would wedge the
  // source's ACR clamp.
  bool touched = false;
  const double er = cell.er.bits_per_sec();
  if (std::isnan(er) || er > link_rate.bits_per_sec()) {
    cell.er = link_rate;
    touched = true;
  } else if (er < 0.0) {
    cell.er = sim::Rate::zero();
    touched = true;
  }
  const double ccr = cell.ccr.bits_per_sec();
  if (std::isnan(ccr) || ccr < 0.0) {
    cell.ccr = sim::Rate::zero();
    touched = true;
  } else if (ccr > link_rate.bits_per_sec()) {
    cell.ccr = link_rate;
    touched = true;
  }
  if (touched) ++rm_sanitized_;
}

void Switch::receive_cell(Cell cell) {
  const auto it = routes_.find(cell.vc);
  if (it == routes_.end()) {
    ++unrouted_;
    return;
  }
  const Route route = it->second;
  if (reaping_) last_activity_[cell.vc] = sim_->now();
  OutputPort& fwd = *ports_[route.forward_port];
  // ER/CCR refer to the forward direction either way, so the forward
  // link's capacity is the sanity cap for both cell directions.
  if (cell.is_rm()) sanitize_rm(cell, fwd.rate());
  if (policer_ && cell.kind != CellKind::kBackwardRm) {
    switch (policer_->check(cell, fwd.controller().fair_share(), sim_->now())) {
      case Policer::Verdict::kPass:
        break;
      case Policer::Verdict::kTag:
        cell.clp = true;
        record_policer_event(cell, 1);
        break;
      case Policer::Verdict::kDrop:
        record_policer_event(cell, 2);
        // Discarded at ingress, before the port queue: enforcement
        // drops do NOT feed the controller's offered-load measurement,
        // so a policed violator stops inflating the apparent session
        // count (that is the whole point of dropping here and not at
        // the queue).
        return;
    }
  }
  switch (cell.kind) {
    case CellKind::kData:
      fwd.send(cell);
      break;
    case CellKind::kForwardRm:
      fwd.controller().on_forward_rm(cell, fwd.queue_length());
      record_rm_event(obs::EventKind::kRmForward, cell, route.forward_port);
      fwd.send(cell);
      break;
    case CellKind::kBackwardRm:
      // Feedback for the forward direction is written here, then the
      // cell continues along the reverse path. The trace records the
      // post-stamp ER/CCR — what the source will actually be told.
      fwd.controller().on_backward_rm(cell, fwd.queue_length());
      record_rm_event(obs::EventKind::kRmBackward, cell, route.forward_port);
      ports_[route.backward_port]->send(cell);
      break;
  }
}

}  // namespace phantom::atm
