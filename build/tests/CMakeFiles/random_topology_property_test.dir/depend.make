# Empty dependencies file for random_topology_property_test.
# This may be replaced when dependencies are built.
