file(REMOVE_RECURSE
  "CMakeFiles/tcp_sender_edge_test.dir/tcp_sender_edge_test.cc.o"
  "CMakeFiles/tcp_sender_edge_test.dir/tcp_sender_edge_test.cc.o.d"
  "tcp_sender_edge_test"
  "tcp_sender_edge_test.pdb"
  "tcp_sender_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_sender_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
