# Empty dependencies file for baselines_unit_test.
# This may be replaced when dependencies are built.
