file(REMOVE_RECURSE
  "CMakeFiles/phantom_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/phantom_bench_util.dir/bench_util.cc.o.d"
  "libphantom_bench_util.a"
  "libphantom_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phantom_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
