file(REMOVE_RECURSE
  "CMakeFiles/core_residual_filter_test.dir/core_residual_filter_test.cc.o"
  "CMakeFiles/core_residual_filter_test.dir/core_residual_filter_test.cc.o.d"
  "core_residual_filter_test"
  "core_residual_filter_test.pdb"
  "core_residual_filter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_residual_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
