// Randomized fault-schedule generation for the chaos search.
//
// generate_plan() samples a valid FaultPlan against a scenario: fault
// kinds, targets, activation times and overlaps are all drawn from the
// given Rng, so a schedule is a pure function of the seed. Every
// sampled value lands on the text grammar's exact decimal lattice
// (integer-millisecond times, two-decimal probabilities), so
// parse(to_spec(plan)) == plan — the property that lets the shrinker
// emit minimized plans phantom_cli replays byte-identically.
#pragma once

#include "chaos/scenario.h"
#include "fault/fault_plan.h"
#include "sim/random.h"

namespace phantom::chaos {

struct GenOptions {
  /// Target event count; a leave/join churn pair counts as two.
  int min_events = 1;
  int max_events = 5;
  /// Earliest activation time; zero means horizon / 3 (past the startup
  /// transient, so the reconvergence oracle has a pre-fault operating
  /// point to measure).
  sim::Time earliest;
  /// Sim time reserved after the last fault stops perturbing the
  /// network, so the oracles can observe recovery before the horizon.
  sim::Time recovery_budget = sim::Time::ms(250);
  sim::Time max_duration = sim::Time::ms(40);   ///< outage/burst/RM window
  sim::Time max_churn_gap = sim::Time::ms(40);  ///< leave -> rejoin gap
  int max_flap_cycles = 3;
  /// Include `misbehave` faults (source defection) in the sampled kind
  /// mix. Opt-in: turning it on changes what every seed generates, so
  /// the default preserves historical plans (and checkpoints) from
  /// seeds recorded before this fault kind existed.
  bool misbehave = false;
  /// Include `rm_blackhole` faults (directional backward-RM loss — the
  /// feedback path goes dark while data keeps flowing) in the sampled
  /// kind mix. Opt-in for the same seed-stability reason as misbehave.
  bool rm_blackhole = false;
  /// Include resource-exhaustion faults (`memsqueeze` buffer squeezes
  /// and `vcstorm` session-setup floods) in the sampled kind mix.
  /// Requires a scenario with overload protection armed (the injector
  /// refuses such plans otherwise). Opt-in for seed stability.
  bool overload = false;
};

/// Samples a fault schedule for `spec`'s topology. Guarantees:
///  * every target index is valid for the built scenario;
///  * every event's perturbation ends by horizon - recovery_budget;
///  * every kLeave is paired with a later kJoin of the same session, so
///    the network ends in its nominal configuration (the differential
///    oracle compares the end state against the fault-free run).
/// Throws std::invalid_argument if the horizon is too short to fit the
/// fault window plus the recovery budget.
[[nodiscard]] fault::FaultPlan generate_plan(sim::Rng& rng,
                                             const ScenarioSpec& spec,
                                             const GenOptions& opt = {});

}  // namespace phantom::chaos
