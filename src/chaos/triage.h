// Failure triage: deduplicating a pile of failing trials into unique
// failure classes.
//
// A 500-trial soak that hits the same null-deref 40 times should read
// "1 unique failure class (process-crash/SIGSEGV), 40 trials", not 40
// near-identical entries. Failures are grouped by a fingerprint built
// from (verdict, crash signal, normalized message): the salient line of
// an assert/sanitizer report for process crashes, the oracle's detail
// otherwise, with volatile specifics (counts, times, addresses) masked
// so two instances of one bug fingerprint identically.
#pragma once

#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "chaos/runner.h"
#include "fault/fault_plan.h"

namespace phantom::chaos {

struct TriagedClass {
  std::string fingerprint;
  Verdict verdict = Verdict::kPass;
  std::string signal;         ///< crash signal name, empty unless kProcessCrash
  std::string sample_detail;  ///< detail of the first (representative) member
  /// The representative member's flight recorder (the last structured
  /// events before its verdict; see TrialResult::flight_recorder).
  std::vector<std::string> flight_recorder;
  std::vector<int> trials;    ///< member trial indices, ascending
};

/// Masks volatile specifics in a failure message: hex addresses become
/// '@', digit runs become '#', whitespace runs collapse to one space.
[[nodiscard]] std::string normalize_failure_text(const std::string& text);

/// The salient line of a crash's stderr: the first line mentioning a
/// sanitizer error, runtime error or assert; empty when none matches.
[[nodiscard]] std::string salient_stderr_line(const std::string& stderr_tail);

/// The grouping key. Stable across reruns of a deterministic failure.
[[nodiscard]] std::string failure_fingerprint(const TrialResult& r);

/// Plan-aware grouping key: a trial whose plan schedules source
/// defection fingerprints as "verdict|misbehave|N" (N = distinct
/// misbehaving sessions), so every fairness/invariant failure caused by
/// the same adversary pressure dedups into one class regardless of
/// which oracle message fired first. Process crashes keep their
/// signal-based fingerprint (the crash identity matters more than what
/// provoked it), and a null or misbehave-free plan falls back to the
/// plain fingerprint.
[[nodiscard]] std::string failure_fingerprint(const TrialResult& r,
                                              const fault::FaultPlan* plan);

/// Groups (trial index, result) pairs into classes, ordered by first
/// occurrence. Passing trials must not be included by the caller.
[[nodiscard]] std::vector<TriagedClass> triage_failures(
    const std::vector<std::pair<int, const TrialResult*>>& failures);

/// Plan-aware variant (see the plan-aware failure_fingerprint). Plans
/// may be null, falling back to the message fingerprint per trial.
[[nodiscard]] std::vector<TriagedClass> triage_failures(
    const std::vector<std::tuple<int, const TrialResult*,
                                 const fault::FaultPlan*>>& failures);

}  // namespace phantom::chaos
