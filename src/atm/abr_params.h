// ABR source/end-system parameters, defaulted to the values the paper
// quotes from ATM Forum TM 4.0 Appendix I [Sat96]:
//   Nrm = 32, AIR*Nrm = 4.25 Mb/s, RDF = 256, PCR = 150 Mb/s, TOF = 2,
//   TCR = 10 cells/s (4.24 Kb/s), ICR = 8.5 Mb/s.
// (The OCR of the paper prints "AIR Nrm = 42:5Mbs"; the paper elsewhere
// requires AIR*Nrm << 30 Mb/s, so we read it as 4.25 Mb/s — see
// DESIGN.md "Substitutions".)
#pragma once

#include <stdexcept>

#include "sim/time.h"

namespace phantom::atm {

struct AbrParams {
  sim::Rate pcr = sim::Rate::mbps(150);   ///< Peak Cell Rate (never exceeded)
  sim::Rate mcr = sim::Rate::zero();      ///< Minimum Cell Rate (guaranteed)
  sim::Rate icr = sim::Rate::mbps(8.5);   ///< Initial Cell Rate
  sim::Rate tcr = sim::Rate::cells_per_sec(10);  ///< Tagged Cell Rate (idle floor)
  /// Additive increase applied per backward RM cell without CI set
  /// (= AIR * Nrm in TM 4.0 terms).
  sim::Rate air_nrm = sim::Rate::mbps(4.25);
  int nrm = 32;        ///< cells per forward RM cell (one FRM in every Nrm)
  double rdf = 256.0;  ///< Rate Decrease Factor: ACR *= (1 - Nrm/RDF) per CI
  double tof = 2.0;    ///< Time-Out Factor for use-it-or-lose-it
  /// Trm: upper bound on the FRM spacing. A source whose ACR is beaten
  /// down sends in-rate RM cells very rarely (one per Nrm cells), which
  /// would stall its own recovery; TM 4.0 therefore emits an
  /// out-of-rate FRM whenever none was sent for Trm [Sat96].
  sim::Time trm = sim::Time::ms(100);

  /// Throws std::invalid_argument if the parameter set is inconsistent.
  void validate() const {
    if (pcr.bits_per_sec() <= 0) throw std::invalid_argument{"PCR must be positive"};
    if (mcr.bits_per_sec() < 0) throw std::invalid_argument{"MCR must be >= 0"};
    if (icr > pcr) throw std::invalid_argument{"ICR must not exceed PCR"};
    if (tcr.bits_per_sec() <= 0) throw std::invalid_argument{"TCR must be positive"};
    if (nrm < 2) throw std::invalid_argument{"Nrm must be at least 2"};
    if (rdf <= nrm) throw std::invalid_argument{"RDF must exceed Nrm"};
    if (tof <= 0) throw std::invalid_argument{"TOF must be positive"};
    if (trm <= sim::Time::zero())
      throw std::invalid_argument{"Trm must be positive"};
  }
};

}  // namespace phantom::atm
