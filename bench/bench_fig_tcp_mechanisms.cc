// Fig. 9 / 11 / 14 / 17: the four Phantom mechanisms for TCP routers
// against the drop-tail baseline, on the §4.3 scenario (four greedy
// Reno flows, heterogeneous RTTs, one 10 Mb/s bottleneck) and on the
// three-router beat-down chain.
//
// Paper shapes:
//  * drop-tail (Fig. 14 left): RTT-biased shares, queue rides the limit;
//  * Selective Discard (Fig. 14/17 right): near-equal shares, queue
//    controlled, no modification of the TCP end systems;
//  * Selective Source Quench (Fig. 9) and EFCI (Fig. 11): fairness
//    improves through window feedback instead of drops;
//  * beat-down chain (Fig. 17): drop-tail starves the 3-hop flow;
//    Selective Discard restores its share.
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr double kUf = tcp::kTcpUtilizationFactor;

tcp::PolicyFactory factory(const char* kind) {
  const std::string k = kind;
  if (k == "droptail") return nullptr;
  if (k == "discard") {
    return [](sim::Simulator& sim, Rate rate) {
      return std::make_unique<tcp::SelectiveDiscardPolicy>(sim, rate, kUf);
    };
  }
  if (k == "sel-red") {
    return [](sim::Simulator& sim, Rate rate) {
      return std::make_unique<tcp::SelectiveRedPolicy>(sim, rate, kUf);
    };
  }
  if (k == "quench") {
    return [](sim::Simulator& sim, Rate rate) {
      return std::make_unique<tcp::SelectiveQuenchPolicy>(sim, rate, kUf,
                                                          Time::ms(10));
    };
  }
  // "efci"
  return [](sim::Simulator& sim, Rate rate) {
    return std::make_unique<tcp::EfciMarkPolicy>(sim, rate, kUf);
  };
}

std::vector<double> run_chain(tcp::PolicyFactory policy_factory) {
  sim::Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r0 = net.add_router("r0");
  const auto r1 = net.add_router("r1");
  const auto r2 = net.add_router("r2");
  auto mk = [&] {
    tcp::TcpTrunkOptions o;
    o.queue_limit = 60;
    o.delay = Time::ms(3);
    if (policy_factory) o.policy = policy_factory;
    return o;
  };
  const auto t01 = net.add_trunk(r0, r1, mk());
  const auto t12 = net.add_trunk(r1, r2, mk());
  const auto s_end = net.add_sink_node(r2, mk());
  tcp::TcpTrunkOptions stub;
  stub.rate = Rate::mbps(100);
  stub.queue_limit = 1000;
  const auto s1 = net.add_sink_node(r1, stub);
  const auto s2 = net.add_sink_node(r2, stub);
  net.add_flow(r0, {t01, t12}, s_end);  // the 3-hop flow
  net.add_flow(r0, {t01}, s1);
  net.add_flow(r1, {t12}, s2);
  net.add_flow(r2, {}, s_end);
  net.start_all(Time::zero(), Time::ms(73));
  sim.run_until(Time::sec(3));
  std::vector<std::int64_t> base;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    base.push_back(net.delivered_bytes(f));
  }
  sim.run_until(Time::sec(12));
  std::vector<double> mbps;
  for (std::size_t f = 0; f < net.num_flows(); ++f) {
    mbps.push_back(static_cast<double>(net.delivered_bytes(f) - base[f]) *
                   8.0 / 9.0 / 1e6);
  }
  return mbps;
}

}  // namespace

int main() {
  exp::print_header("Fig 9/11/14",
                    "TCP mechanisms vs drop-tail (4 Reno flows, 10 Mb/s)");
  exp::Table table{{"mechanism", "f0 (RTT 6ms)", "f1 (12ms)", "f2 (24ms)",
                    "f3 (48ms)", "total", "Jain", "mean queue"}};
  for (const char* kind :
       {"droptail", "discard", "sel-red", "quench", "efci"}) {
    const TcpRun r = run_tcp_bottleneck(factory(kind));
    table.add_row({kind, exp::Table::num(r.mbps[0]), exp::Table::num(r.mbps[1]),
                   exp::Table::num(r.mbps[2]), exp::Table::num(r.mbps[3]),
                   exp::Table::num(r.total), exp::Table::num(r.jain, 3),
                   exp::Table::num(r.mean_queue, 1)});
  }
  table.print();

  exp::print_header("Fig 17", "beat-down chain: 3-hop flow vs per-hop locals");
  exp::Table chain{{"mechanism", "3-hop flow", "local 1", "local 2", "local 3",
                    "3-hop / mean(local)"}};
  for (const char* kind : {"droptail", "discard"}) {
    const auto r = run_chain(factory(kind));
    const double locals = (r[1] + r[2] + r[3]) / 3.0;
    chain.add_row({kind, exp::Table::num(r[0]), exp::Table::num(r[1]),
                   exp::Table::num(r[2]), exp::Table::num(r[3]),
                   exp::Table::num(r[0] / locals, 2)});
  }
  chain.print();
  return 0;
}
