// The seam between the switching substrate and a flow-control algorithm.
//
// Every algorithm the paper studies — Phantom itself and the EPRCA /
// APRC / CAPC baselines of §5 — is a *per-output-port, constant-space*
// controller. The switch notifies the controller about cell-level events
// on its port and consults it when a backward RM cell for a VC routed
// through that port passes by (that is where ER/CI feedback is written).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "atm/cell.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/time.h"

namespace phantom::atm {

/// Audit record of a controller's warm-start path: when a restart is
/// "warm", the controller rebuilds its rate estimate from the first
/// window of observed RM traffic instead of reinstalling its boot
/// constant, and this records exactly what it rebuilt from.
struct WarmStartAudit {
  std::uint64_t warm_restarts = 0;  ///< warm_restart() calls so far
  bool window_open = false;         ///< still collecting the first window
  std::uint64_t ccr_samples = 0;    ///< FRM CCRs sampled in the last window
  double seeded_bps = 0.0;          ///< estimate installed at window close
};

/// The sampling window behind WarmStartAudit. A controller's
/// warm_restart() calls begin(); its on_forward_rm feeds every CCR to
/// sample(); close() yields the mean observed CCR as the warm seed when
/// the window ends — at the controller's first measurement tick after
/// RM traffic was seen (ripe()) or after kMaxSamples FRMs, whichever
/// comes first.
class WarmStartWindow {
 public:
  static constexpr std::uint64_t kMaxSamples = 32;

  void begin() {
    ++audit_.warm_restarts;
    audit_.window_open = true;
    audit_.ccr_samples = 0;
    audit_.seeded_bps = 0.0;
    sum_bps_ = 0.0;
  }

  [[nodiscard]] bool open() const { return audit_.window_open; }

  /// Open and holding at least one sample — ready for a measurement
  /// tick to close it. A tick that fires before any FRM arrived must
  /// NOT close the window (an interval-driven controller's first tick
  /// can beat the first RM cell by orders of magnitude, and closing
  /// empty would silently turn every warm restart into a cold one).
  [[nodiscard]] bool ripe() const {
    return audit_.window_open && audit_.ccr_samples > 0;
  }

  /// Feeds one FRM's CCR; returns true when the window just filled and
  /// the caller should close() immediately.
  bool sample(double ccr_bps) {
    if (!audit_.window_open) return false;
    sum_bps_ += ccr_bps;
    ++audit_.ccr_samples;
    return audit_.ccr_samples >= kMaxSamples;
  }

  /// Ends the window: the mean observed CCR, or nothing when no RM
  /// traffic was seen at all (the caller stays on its cold boot value).
  std::optional<double> close() {
    audit_.window_open = false;
    if (audit_.ccr_samples == 0) return std::nullopt;
    return sum_bps_ / static_cast<double>(audit_.ccr_samples);
  }

  void record_seed(double bps) { audit_.seeded_bps = bps; }
  [[nodiscard]] const WarmStartAudit& audit() const { return audit_; }

 private:
  WarmStartAudit audit_;
  double sum_bps_ = 0.0;
};

/// Flow-control algorithm attached to one switch output port.
///
/// Implementations must use O(1) state (no per-VC tables) to honour the
/// paper's "constant space" class; tests assert sizeof() stays small.
class PortController {
 public:
  virtual ~PortController() = default;

  /// A cell was accepted into the port's queue (queue length includes it).
  virtual void on_cell_accepted(const Cell& cell, std::size_t queue_len) {
    (void)cell;
    (void)queue_len;
  }

  /// A cell arrived but the queue was full.
  virtual void on_cell_dropped(const Cell& cell) { (void)cell; }

  /// A cell finished transmission onto the link.
  virtual void on_cell_transmitted(const Cell& cell) { (void)cell; }

  /// A forward RM cell is transiting this port (EPRCA-family algorithms
  /// learn CCRs here). Called before the cell is queued.
  virtual void on_forward_rm(Cell& cell, std::size_t queue_len) {
    (void)cell;
    (void)queue_len;
  }

  /// A backward RM cell for a VC whose *forward* path uses this port.
  /// This is where the algorithm writes its feedback (reduce `er`, set
  /// `ci`). `queue_len` is the forward port's current queue length.
  virtual void on_backward_rm(Cell& cell, std::size_t queue_len) = 0;

  /// Simulated controller restart: wipe every learned variable back to
  /// its boot value (the fault subsystem's port-controller-restart
  /// fault). Because the algorithms in the paper's constant-space class
  /// keep only O(1) measured state, a restarted controller must relearn
  /// the fair share from measurements alone — the recovery claim the
  /// resilience benches quantify. Default: stateless controller, no-op.
  virtual void reset() {}

  /// Warm variant of reset(): wipe learned state, then rebuild the rate
  /// estimate from the first window of RM traffic observed after the
  /// restart (see WarmStartWindow) instead of cold-booting at the
  /// initial constant — a deployable switch does not forget what the
  /// wire is still telling it. Controllers with no warm path fall back
  /// to a cold reset. warm_audit() exposes what was rebuilt.
  virtual void warm_restart() { reset(); }

  /// The warm-start audit record; nullptr for controllers without a
  /// warm path.
  [[nodiscard]] virtual const WarmStartAudit* warm_audit() const {
    return nullptr;
  }

  /// A VC routed through this port was declared dead (the switch's
  /// stale-VC reaper, or an explicit teardown): whatever per-VC or
  /// session-count state the controller keeps for it must be released
  /// so surviving sessions reclaim the share. Constant-space
  /// controllers have nothing to release; default no-op.
  virtual void vc_expired(int vc) { (void)vc; }

  /// Whether a data cell entering the queue should have EFCI set.
  [[nodiscard]] virtual bool mark_efci(std::size_t queue_len) const {
    (void)queue_len;
    return false;
  }

  /// The algorithm's current fair-share estimate (MACR / ERS), traced by
  /// the experiment harness — the quantity the paper's figures plot.
  [[nodiscard]] virtual sim::Rate fair_share() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Attaches the structured event log (see obs::EventLog); the
  /// controller records a kRateUpdate whenever its estimate moves.
  /// `node`/`port` identify the owning switch port in the trace.
  void set_event_log(obs::EventLog* log, int node, int port) {
    event_log_ = log;
    obs_node_ = static_cast<std::int16_t>(node);
    obs_port_ = static_cast<std::int16_t>(port);
  }

  /// Registers this controller's metrics under `prefix`. The base
  /// registers the common surface (fair share, warm restarts);
  /// algorithms override to add their own state (and should call the
  /// base first).
  virtual void register_metrics(obs::Registry& reg,
                                const std::string& prefix) {
    reg.add_gauge({prefix + ".fair_share_mbps", "controller.fair_share_mbps",
                   obs::MetricType::kGauge, "Mb/s", "PortController",
                   "current fair-share estimate (MACR / ERS)"},
                  [this] { return fair_share().mbits_per_sec(); });
    if (warm_audit() != nullptr) {
      reg.add_counter(
          {prefix + ".warm_restarts", "controller.warm_restarts",
           obs::MetricType::kCounter, "restarts", "PortController",
           "warm_restart() invocations"},
          [this] { return warm_audit()->warm_restarts; });
    }
  }

 protected:
  /// Implementations call this after each fair-share recomputation.
  void note_rate_update(sim::Time now) {
    if constexpr (obs::kObsEnabled) {
      if (event_log_ != nullptr) {
        obs::Event e;
        e.time = now;
        e.kind = obs::EventKind::kRateUpdate;
        e.node = obs_node_;
        e.port = obs_port_;
        e.a = fair_share().mbits_per_sec();
        event_log_->record(e);
      }
    } else {
      (void)now;
    }
  }

 private:
  obs::EventLog* event_log_ = nullptr;
  std::int16_t obs_node_ = -1;
  std::int16_t obs_port_ = -1;
};

/// No-op controller for ports that do not run flow control (access
/// links, reverse-direction RM paths).
class NullController final : public PortController {
 public:
  void on_backward_rm(Cell&, std::size_t) override {}
  [[nodiscard]] sim::Rate fair_share() const override { return sim::Rate::zero(); }
  [[nodiscard]] std::string name() const override { return "null"; }
  /// Uncontrolled ports have no estimate worth a metric.
  void register_metrics(obs::Registry&, const std::string&) override {}
};

}  // namespace phantom::atm
