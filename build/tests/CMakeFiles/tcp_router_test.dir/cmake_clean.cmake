file(REMOVE_RECURSE
  "CMakeFiles/tcp_router_test.dir/tcp_router_test.cc.o"
  "CMakeFiles/tcp_router_test.dir/tcp_router_test.cc.o.d"
  "tcp_router_test"
  "tcp_router_test.pdb"
  "tcp_router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
