// The Phantom MACR filter — the paper's constant-space core, isolated
// from any transport so the ATM switch controller and the TCP router
// mechanisms share one implementation.
#pragma once

#include "core/phantom_config.h"
#include "sim/time.h"

namespace phantom::core {

/// Maintains the phantom session's rate (MACR) from per-interval
/// measurements of offered load on a link of known capacity.
///
/// Update per interval (DESIGN.md §1):
///     Δ    = u·C − offered          (residual bandwidth)
///     ERR  = Δ − MACR
///     DEV  = (1−h)·DEV + h·|ERR|    (Jacobson mean deviation [Jac88])
///     α    = base(ERR sign) · |ERR| / (|ERR| + k·DEV)   [adaptive]
///     MACR = MACR + α·ERR           (== (1−α)·MACR + α·Δ)
/// then clamped into [min_macr, u·C].
///
/// State: two doubles (MACR, DEV). That, plus the interval arrival
/// counter in the caller, is the algorithm's entire per-port footprint —
/// the "constant space" property the paper's title claims.
class ResidualFilter {
 public:
  ResidualFilter(sim::Rate link_capacity, const PhantomConfig& config);

  /// Feeds one interval's offered load (arrivals including drops, as a
  /// rate) and advances the filter. Returns the new MACR.
  sim::Rate update(sim::Rate offered);

  /// Forgets everything measured: MACR back to its initial value, DEV to
  /// zero — the whole per-port state, which is the point of the paper's
  /// constant-space claim (a restarted controller recovers from scratch
  /// in a handful of measurement intervals).
  void reset();

  /// Installs a measured starting point (the warm-restart path): MACR
  /// jumps to `macr` clamped into [min_macr, u·C], DEV restarts at zero
  /// exactly as after reset() — only the operating point differs.
  void seed(sim::Rate macr);

  [[nodiscard]] sim::Rate macr() const { return sim::Rate::bps(macr_); }
  [[nodiscard]] double deviation_bps() const { return dev_; }
  [[nodiscard]] sim::Rate target() const { return sim::Rate::bps(target_); }

 private:
  double target_;  // u * C in bps
  double floor_;
  double alpha_inc_;
  double alpha_dec_;
  double dev_gain_;
  double noise_scale_;
  bool adaptive_;

  double macr_;
  double dev_ = 0.0;
  double initial_macr_ = 0.0;
};

}  // namespace phantom::core
