#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

namespace phantom::stats {

Histogram::Histogram(double upper, std::size_t bins)
    : upper_{upper},
      bin_width_{upper / static_cast<double>(bins)},
      bins_(bins + 1, 0) {
  if (upper <= 0.0) throw std::invalid_argument{"upper must be positive"};
  if (bins == 0) throw std::invalid_argument{"need at least one bin"};
}

void Histogram::add(double value) {
  if (value < 0.0) throw std::invalid_argument{"histogram values must be >= 0"};
  ++count_;
  sum_ += value;
  max_ = std::max(max_, value);
  if (value >= upper_) {
    ++bins_.back();
  } else {
    ++bins_[static_cast<std::size_t>(value / bin_width_)];
  }
}

double Histogram::quantile(double q) const {
  if (q < 0.0 || q > 1.0) throw std::invalid_argument{"q must be in [0,1]"};
  if (count_ == 0) return 0.0;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t b = 0; b + 1 < bins_.size(); ++b) {
    const double next = cumulative + static_cast<double>(bins_[b]);
    if (next >= target) {
      const double within =
          bins_[b] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(bins_[b]);
      return (static_cast<double>(b) + within) * bin_width_;
    }
    cumulative = next;
  }
  return upper_;  // landed in the overflow bin
}

}  // namespace phantom::stats
