// ERICA-style per-VC explicit-rate controller [JKV94, JKVG95, JKG+95].
//
// The paper classifies switch algorithms into constant-space schemes
// (Phantom, EPRCA, APRC, CAPC) and schemes whose state grows with the
// number of connections ("its advanced versions ERICA/ERICA+ maintain a
// counter per session"). This controller represents the second class:
// it tracks each VC's current cell rate and computes
//
//   every Δt:  z = input_rate / (u * C)          (load factor)
//              fair_share = u * C / N            (N = active VCs)
//   on BRM:    ER = min(ER, max(fair_share, CCR_vc / z))
//
// giving each session the exact fair share (no phantom penalty) at the
// cost of O(VCs) memory — the trade-off `bench_tab_comparison_space`
// quantifies against Phantom.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "atm/port_controller.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace phantom::baselines {

struct EricaConfig {
  sim::Time interval = sim::Time::ms(1);
  double utilization = 0.95;
  sim::Rate initial_fair_share = sim::Rate::mbps(8.5);
  /// VCs silent for this many intervals stop counting as active.
  int activity_timeout_intervals = 50;

  void validate() const {
    if (interval <= sim::Time::zero())
      throw std::invalid_argument{"interval must be positive"};
    if (utilization <= 0 || utilization > 1)
      throw std::invalid_argument{"utilization must be in (0,1]"};
    if (activity_timeout_intervals < 1)
      throw std::invalid_argument{"activity timeout must be >= 1 interval"};
  }
};

class EricaController final : public atm::PortController {
 public:
  EricaController(sim::Simulator& sim, sim::Rate link_capacity,
                  EricaConfig config = {});

  void on_cell_accepted(const atm::Cell& cell, std::size_t queue_len) override;
  void on_cell_dropped(const atm::Cell& cell) override;
  void on_forward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void on_backward_rm(atm::Cell& cell, std::size_t queue_len) override;
  void reset() override;
  void warm_restart() override;
  [[nodiscard]] const atm::WarmStartAudit* warm_audit() const override {
    return &warm_.audit();
  }
  /// Releases a reaped VC's table entry immediately — the reaper's
  /// deadline is authoritative, no need to wait out the controller's
  /// own activity_timeout_intervals.
  void vc_expired(int vc) override;

  [[nodiscard]] sim::Rate fair_share() const override {
    return sim::Rate::bps(fair_share_);
  }
  [[nodiscard]] std::string name() const override { return "erica"; }
  [[nodiscard]] const sim::Trace& fair_share_trace() const { return trace_; }
  [[nodiscard]] std::size_t tracked_vcs() const { return vcs_.size(); }
  [[nodiscard]] double load_factor() const { return load_factor_; }

  /// Base surface plus the load factor and the per-VC table size (the
  /// O(connections) state the constant-space class avoids).
  void register_metrics(obs::Registry& reg,
                        const std::string& prefix) override {
    PortController::register_metrics(reg, prefix);
    reg.add_gauge({prefix + ".load_factor", "erica.load_factor",
                   obs::MetricType::kGauge, "ratio", "EricaController",
                   "z = input rate / (utilization * capacity)"},
                  [this] { return load_factor_; });
    reg.add_gauge({prefix + ".tracked_vcs", "erica.tracked_vcs",
                   obs::MetricType::kGauge, "vcs", "EricaController",
                   "VCs in the per-VC CCR table"},
                  [this] { return static_cast<double>(vcs_.size()); });
  }

 private:
  struct VcState {
    double ccr_bps = 0.0;
    std::uint64_t last_seen_interval = 0;
  };

  void on_interval();
  void close_warm_window();

  sim::Simulator* sim_;
  EricaConfig config_;
  double target_bps_;  // u * C
  double fair_share_;
  double load_factor_ = 0.0;
  std::uint64_t arrived_cells_ = 0;
  std::uint64_t interval_index_ = 0;
  std::unordered_map<int, VcState> vcs_;  // O(connections) — by design
  atm::WarmStartWindow warm_;
  sim::Trace trace_;
};

}  // namespace phantom::baselines
