// Scenario templates shared by the chaos harness and phantom_cli.
//
// A ScenarioSpec is the small, serializable description of a simulated
// network under test: topology kind, algorithm, session count, link
// rate, horizon. build_topology() wires exactly the network phantom_cli
// builds for the same flags, so any fault schedule the chaos search
// reports replays 1:1 under `phantom_cli --fault-plan=...`.
#pragma once

#include <optional>
#include <string>

#include "atm/abr_params.h"
#include "atm/output_port.h"
#include "exp/factories.h"
#include "topo/abr_network.h"

namespace phantom::chaos {

struct ScenarioSpec {
  enum class Kind {
    kBottleneck,  ///< one switch, N sessions into one controlled link
    kParking,     ///< parking lot: long session + one local per hop
  };

  Kind kind = Kind::kBottleneck;
  exp::Algorithm algorithm = exp::Algorithm::kPhantom;
  int sessions = 3;
  double rate_mbps = 150.0;
  sim::Time horizon = sim::Time::ms(600);
  /// Source parameters for every ABR session (crm/cdf/adtf tuning and
  /// the --no-feedback-decay ablation ride through here); defaults are
  /// the TM 4.0 values phantom_cli uses.
  atm::AbrParams abr_params{};

  /// Arm overload protection (bounded cell memory + admission control)
  /// on the built network. Required for plans containing memsqueeze /
  /// vcstorm events; opt-in so existing scenario specs stay identical.
  bool overload = false;
  /// Shared buffer/CAC configuration when `overload` is set.
  topo::OverloadOptions overload_options{};

  /// Tests plant deliberately broken controllers here (the chaos
  /// harness's own regression tests); empty = make_factory(algorithm).
  topo::ControllerFactory factory_override;

  [[nodiscard]] topo::ControllerFactory factory() const;
};

[[nodiscard]] std::string to_string(ScenarioSpec::Kind k);
[[nodiscard]] std::optional<ScenarioSpec::Kind> kind_from_string(
    const std::string& name);

/// What a generated FaultPlan may target in a built scenario. Dest
/// indices below `controlled_dests` run a real flow-control algorithm
/// (restartable); the rest are uncontrolled exit stubs.
struct TopologyInfo {
  std::size_t trunks = 0;
  std::size_t dests = 0;
  std::size_t controlled_dests = 0;
  std::size_t sessions = 0;
};

/// Target counts for `spec` without building the network.
[[nodiscard]] TopologyInfo topology_info(const ScenarioSpec& spec);

/// Wires `spec`'s topology into `net` (which must have been constructed
/// with spec.factory()) and returns the bottleneck port the oracles
/// watch. Does not start the sources — callers start_all() when their
/// probes are armed.
atm::OutputPort& build_topology(const ScenarioSpec& spec,
                                topo::AbrNetwork& net);

}  // namespace phantom::chaos
