// Overload figure (new; no paper counterpart): graceful degradation
// under resource exhaustion. A single 150 Mb/s bottleneck with a fixed
// 512-cell memory is offered an increasing population of sessions in
// contracted/elastic pairs: the contracted half carries an 8 Mb/s MCR
// (sources clamp ACR at their minimum, so explicit-rate feedback can
// never push the contracted load below sum-of-MCR), the elastic half is
// pure best-effort (MCR 0). All sessions speak 32-cell AAL5 frames.
// Past 38 offered sessions the contracted minimums alone exceed the
// link — an overload the rate control loop is contractually forbidden
// to resolve — and the 512-cell memory is the only thing standing
// between the admitted minimums and collapse.
//
// Three configurations per offered load:
//  * armor      — CAC + EPD (the full overload armor): setups beyond
//                 the buffer-headroom budget are refused, early
//                 discard sheds whole elastic frames at the occupancy
//                 threshold, MCR-protected frames ride through;
//  * no-cac+epd — everyone admitted; EPD still holds occupancy at the
//                 threshold by refusing elastic frames, so contracted
//                 frames keep finding room;
//  * no-cac     — everyone admitted and frame-aware discard disabled
//                 (EPD off, thresholds pushed to the budget top): cells
//                 are dropped individually, mid-frame, when the memory
//                 runs out, so MCR contracts are violated and frames
//                 arrive corrupt — the congestion-collapse cliff.
//
// Expected shape: armor's frame goodput stays flat as offered load
// grows (refusal rate takes the pressure), every admitted contracted
// session retains >= 95% of its MCR, and invariants stay clean.
// Without CAC the contracted minimums collapse in every buffering
// variant — once sum-of-MCR exceeds the link no discard policy can
// honour the contracts, which is exactly why admission control exists —
// but frame-aware discard still earns its keep: EPD spends the
// inevitable loss on whole frames, so fewer delivered frames arrive
// corrupt than under frame-blind tail drop.
#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "fault/invariant_monitor.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

constexpr double kRateMbps = 150.0;
constexpr double kMcrMbps = 8.0;
constexpr int kFrameCells = 32;
constexpr std::size_t kBudgetCells = 512;
constexpr int kOffered[] = {8, 16, 24, 32, 48};
const Time kMeasureFrom = Time::ms(200);
const Time kEnd = Time::ms(500);
constexpr double kRetentionBound = 0.95;

enum class Config { kArmor, kEpdOnly, kBare };

const char* to_string(Config c) {
  switch (c) {
    case Config::kArmor:   return "armor";
    case Config::kEpdOnly: return "no-cac+epd";
    case Config::kBare:    return "no-cac";
  }
  return "?";
}

struct RunResult {
  int admitted = 0;
  int refused = 0;
  double goodput_mbps = 0.0;     ///< complete-frame goodput, all sessions
  double min_retention = 1.0;    ///< min over admitted *contracted*
                                 ///< sessions of wire goodput / MCR
  std::uint64_t epd_frames = 0;
  std::uint64_t shed_cells = 0;
  std::uint64_t overflow_drops = 0;
  std::uint64_t frames_corrupted = 0;
  std::size_t violations = 0;
};

RunResult run(int offered, Config config) {
  sim::Simulator sim{1};
  topo::AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  topo::TrunkOptions opts;
  opts.rate = Rate::mbps(kRateMbps);
  const auto dest = net.add_destination(sw, opts);

  topo::OverloadOptions oo;
  oo.buffer.budget_cells = kBudgetCells;
  if (config == Config::kBare) {
    // Frame-blind ablation: EPD off, and the EPD/shed thresholds pushed
    // to the top of the budget so the only discard left is dropping
    // individual cells when the memory runs out.
    oo.buffer.epd = false;
    oo.buffer.epd_fraction = 0.98;
    oo.buffer.shed_fraction = 0.99;
  }
  net.enable_overload_protection(oo);

  atm::AbrParams contracted;
  contracted.mcr = Rate::mbps(kMcrMbps);
  contracted.frame_cells = kFrameCells;
  atm::AbrParams elastic;
  elastic.frame_cells = kFrameCells;

  RunResult r;
  std::vector<std::size_t> admitted;          // session -> watched
  std::vector<bool> is_contracted;            // parallel to `admitted`
  for (int i = 0; i < offered; ++i) {
    const bool contract = i % 2 == 0;  // interleave contracted/elastic
    const atm::AbrParams& params = contract ? contracted : elastic;
    if (config == Config::kArmor) {
      const auto outcome = net.try_add_session(sw, {}, dest, params);
      if (outcome.admitted) {
        admitted.push_back(outcome.session);
        is_contracted.push_back(contract);
      } else {
        ++r.refused;
      }
    } else {
      // add_session bypasses the admission judgment (force-admitting
      // the MCR booking) — the "switch that never says no" ablation.
      admitted.push_back(net.add_session(sw, {}, dest, params));
      is_contracted.push_back(contract);
    }
  }
  r.admitted = static_cast<int>(admitted.size());

  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(kMeasureFrom);

  std::vector<std::uint64_t> cells_at_mark;
  std::vector<std::uint64_t> frames_at_mark;
  for (const std::size_t s : admitted) {
    cells_at_mark.push_back(net.delivered_cells(s));
    frames_at_mark.push_back(net.delivered_frames(s));
  }
  sim.run_until(kEnd);
  monitor.check_now();

  const double window_s = (kEnd - kMeasureFrom).seconds();
  for (std::size_t i = 0; i < admitted.size(); ++i) {
    const std::size_t s = admitted[i];
    const auto cell_delta = net.delivered_cells(s) - cells_at_mark[i];
    const auto frame_delta = net.delivered_frames(s) - frames_at_mark[i];
    r.goodput_mbps += static_cast<double>(frame_delta) * kFrameCells *
                      atm::kCellBits / window_s * 1e-6;
    if (!is_contracted[i]) continue;
    // MCR is a wire-rate contract; delivered cells are data only, so
    // scale by the FRM overhead (every Nrm-th cell) before comparing.
    const double rm_overhead = static_cast<double>(contracted.nrm) /
                               static_cast<double>(contracted.nrm - 1);
    const double wire_mbps = static_cast<double>(cell_delta) * atm::kCellBits *
                             rm_overhead / window_s * 1e-6;
    r.min_retention = std::min(r.min_retention, wire_mbps / kMcrMbps);
  }
  for (std::size_t d = 0; d < net.num_destinations(); ++d) {
    r.frames_corrupted += net.destination(d).total_frames_corrupted();
  }
  r.epd_frames = net.epd_frames_discarded();
  r.shed_cells = net.cells_shed();
  r.overflow_drops = net.buffer_overflow_drops();
  r.violations = monitor.violations().size();
  if (r.violations > 0) {
    const auto& v = monitor.violations().front();
    std::printf("  [%s offered=%d] invariant %s: %s\n", to_string(config),
                offered, v.invariant.c_str(), v.detail.c_str());
  }
  return r;
}

}  // namespace

int main() {
  exp::print_header("Fig OV", "graceful degradation under overload");
  std::printf(
      "bottleneck @ %.0f Mb/s, %zu-cell switch memory; sessions offered\n"
      "in contracted/elastic pairs (MCR %.0f / 0 Mb/s, %d-cell frames),\n"
      "count swept over {8, 16, 24, 32, 48}; goodput = complete AAL5\n"
      "frames over [%.0f, %.0f] ms; retention = worst contracted\n"
      "session's wire goodput / MCR. armor = CAC + EPD; no-cac admits\n"
      "everyone; no-epd is cell-granular tail drop at the hard budget.\n\n",
      kRateMbps, kBudgetCells, kMcrMbps, kFrameCells,
      kMeasureFrom.milliseconds(), kEnd.milliseconds());

  exp::Table table{{"offered", "config", "admitted", "refused",
                    "goodput (Mb/s)", "min MCR ret", "epd frames", "shed",
                    "overflow", "corrupted"}};
  bool armor_ok = true;
  double armor_goodput_at_capacity = 0.0;
  double armor_goodput_peak_load = 0.0;
  double bare_retention_peak = 1.0;
  std::uint64_t bare_corrupted_peak = 0;
  std::uint64_t epd_corrupted_peak = 0;
  std::uint64_t epd_frames_peak = 0;
  bool armor_refused_at_peak = false;
  const int peak = kOffered[sizeof(kOffered) / sizeof(kOffered[0]) - 1];

  for (const int offered : kOffered) {
    for (const Config config :
         {Config::kArmor, Config::kEpdOnly, Config::kBare}) {
      const RunResult r = run(offered, config);
      table.add_row({std::to_string(offered), to_string(config),
                     std::to_string(r.admitted), std::to_string(r.refused),
                     exp::Table::num(r.goodput_mbps),
                     exp::Table::num(r.min_retention, 3),
                     std::to_string(r.epd_frames),
                     std::to_string(r.shed_cells),
                     std::to_string(r.overflow_drops),
                     std::to_string(r.frames_corrupted)});

      if (config == Config::kArmor) {
        // Armor acceptance: clean invariants everywhere, contracted
        // minimums held at every offered load.
        if (r.violations != 0 || r.min_retention < kRetentionBound) {
          std::printf(
              "FAILED armor @ offered=%d: %zu violations, min retention "
              "%.3f\n",
              offered, r.violations, r.min_retention);
          armor_ok = false;
        }
        if (offered == 16) armor_goodput_at_capacity = r.goodput_mbps;
        if (offered == peak) {
          armor_goodput_peak_load = r.goodput_mbps;
          armor_refused_at_peak = r.refused > 0;
        }
      }
      if (config == Config::kBare && offered == peak) {
        bare_retention_peak = r.min_retention;
        bare_corrupted_peak = r.frames_corrupted;
      }
      if (config == Config::kEpdOnly && offered == peak) {
        epd_corrupted_peak = r.frames_corrupted;
        epd_frames_peak = r.epd_frames;
      }
    }
  }
  std::printf("\n");
  table.print();

  // Smoothness: armor's goodput at 3x overload stays within 10% of its
  // at-capacity goodput, with the refusal counters (not the contracted
  // sessions) absorbing the excess. Cliff: without CAC the MCR contract
  // breaks outright. EPD ablation: frame-aware discard engages and
  // spends the unavoidable loss on whole frames — fewer delivered
  // frames arrive corrupt than under frame-blind tail drop.
  const bool smooth =
      armor_goodput_peak_load >= 0.9 * armor_goodput_at_capacity &&
      armor_refused_at_peak;
  const bool cliff_shown = bare_retention_peak < 0.5;
  const bool epd_helps =
      epd_frames_peak > 0 && epd_corrupted_peak < bare_corrupted_peak;
  if (!smooth) {
    std::printf("FAILED: armor did not degrade smoothly (goodput %.2f @ "
                "peak vs %.2f at capacity, refusals %s)\n",
                armor_goodput_peak_load, armor_goodput_at_capacity,
                armor_refused_at_peak ? "yes" : "NONE");
  }
  if (!cliff_shown) {
    std::printf("FAILED: no-cac ablation shows no cliff (worst contracted "
                "retention %.3f at offered=%d — expected collapse)\n",
                bare_retention_peak, peak);
  }
  if (!epd_helps) {
    std::printf("FAILED: EPD ablation inconclusive (%llu EPD frames, "
                "corrupted %llu vs bare %llu at offered=%d)\n",
                static_cast<unsigned long long>(epd_frames_peak),
                static_cast<unsigned long long>(epd_corrupted_peak),
                static_cast<unsigned long long>(bare_corrupted_peak), peak);
  }

  std::printf("\nacceptance: armor (retention >= %.2f, clean invariants) "
              "%s | smooth goodput + refusals %s | no-cac cliff %s | "
              "EPD ablation %s\n",
              kRetentionBound, armor_ok ? "PASS" : "FAIL",
              smooth ? "PASS" : "FAIL", cliff_shown ? "PASS" : "FAIL",
              epd_helps ? "PASS" : "FAIL");
  return armor_ok && smooth && cliff_shown && epd_helps ? 0 : 1;
}
