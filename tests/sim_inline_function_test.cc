#include "sim/inline_function.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace phantom::sim {
namespace {

using Fn = InlineFunction<32>;

TEST(InlineFunctionTest, DefaultConstructedIsNull) {
  Fn f;
  EXPECT_FALSE(f);
  EXPECT_TRUE(f == nullptr);
  Fn g{nullptr};
  EXPECT_FALSE(g);
}

TEST(InlineFunctionTest, InvokesStoredLambda) {
  int hits = 0;
  Fn f{[&hits] { ++hits; }};
  ASSERT_TRUE(f);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunctionTest, NullFunctionPointerStaysNull) {
  void (*fp)() = nullptr;
  Fn f{fp};
  EXPECT_FALSE(f);
}

TEST(InlineFunctionTest, FitsInlineTraitMatchesCaptureSize) {
  auto small = [] {};
  std::array<char, 64> big_payload{};
  auto big = [big_payload] { (void)big_payload; };
  static_assert(Fn::fits_inline<decltype(small)>);
  static_assert(!Fn::fits_inline<decltype(big)>);
  // A throwing-move capture may not live inline even when it fits:
  // the event heap relocates entries under a noexcept move.
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    void operator()() const {}
  };
  static_assert(!Fn::fits_inline<ThrowingMove>);
}

TEST(InlineFunctionTest, MoveOnlyCaptureWorksAndTransfersOwnership) {
  int result = 0;
  auto p = std::make_unique<int>(41);
  Fn f{[p = std::move(p), &result] { result = *p + 1; }};
  // Move the whole function object; the unique_ptr travels with it.
  Fn g{std::move(f)};
  EXPECT_FALSE(f);  // NOLINT(bugprone-use-after-move): post-move null is API
  ASSERT_TRUE(g);
  g();
  EXPECT_EQ(result, 42);
}

TEST(InlineFunctionTest, MoveAssignReleasesPreviousTarget) {
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> watch = token;
  Fn f{[token] { (void)token; }};
  token.reset();
  EXPECT_FALSE(watch.expired());
  f = Fn{[] {}};  // overwriting must destroy the old capture
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, ResetDestroysCaptureImmediately) {
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> watch = token;
  Fn f{[token] { (void)token; }};
  token.reset();
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(f);
}

TEST(InlineFunctionTest, OversizedCaptureFallsBackToHeapAndCounts) {
  Fn::reset_heap_fallbacks();
  int seen = 0;
  std::array<char, 64> payload{};
  payload[0] = 7;
  Fn f{[payload, &seen] { seen = payload[0]; }};
  EXPECT_EQ(Fn::heap_fallbacks(), 1u);
  // Heap-stored callables still move (pointer steal) and invoke.
  Fn g{std::move(f)};
  ASSERT_TRUE(g);
  g();
  EXPECT_EQ(seen, 7);
  Fn::reset_heap_fallbacks();
  EXPECT_EQ(Fn::heap_fallbacks(), 0u);
}

TEST(InlineFunctionTest, HeapFallbackCaptureIsDestroyed) {
  Fn::reset_heap_fallbacks();
  auto token = std::make_shared<int>(0);
  std::weak_ptr<int> watch = token;
  std::array<char, 64> pad{};
  {
    Fn f{[token, pad] { (void)pad; }};
    token.reset();
    EXPECT_EQ(Fn::heap_fallbacks(), 1u);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
  Fn::reset_heap_fallbacks();
}

TEST(InlineFunctionTest, MemberCallbackBindsAndInvokes) {
  struct Counter {
    int hits = 0;
    void bump() { ++hits; }
  } c;
  auto cb = bind_member<&Counter::bump>(&c);
  static_assert(Fn::fits_inline<decltype(cb)>);
  Fn f{cb};
  f();
  f();
  EXPECT_EQ(c.hits, 2);
}

// The contract the queue relies on: an event may cancel or reschedule
// *itself*, because the queue moves the callback out before invoking it.
TEST(InlineFunctionTest, EventMayCancelItselfDuringInvocation) {
  Simulator sim;
  EventId self;
  int fired = 0;
  self = sim.schedule(Time::ms(1), [&] {
    ++fired;
    sim.cancel(self);  // cancelling an already-popped event is a no-op
  });
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(InlineFunctionTest, EventMayRescheduleItselfDuringInvocation) {
  Simulator sim;
  int fired = 0;
  std::function<void()> hop = [&] {
    if (++fired < 5) sim.schedule(Time::ms(1), [&] { hop(); });
  };
  sim.schedule(Time::ms(1), [&] { hop(); });
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), Time::ms(5));
}

}  // namespace
}  // namespace phantom::sim
