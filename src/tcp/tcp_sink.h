// TCP receiver: cumulative ACKs with out-of-order reassembly.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "tcp/packet.h"

namespace phantom::tcp {

struct TcpSinkOptions {
  /// RFC-1122-style delayed ACKs: acknowledge every second in-order
  /// segment, or after `delayed_ack_timeout`, whichever comes first.
  /// Out-of-order and duplicate segments are always ACKed immediately
  /// (the sender's fast-retransmit depends on prompt duplicate ACKs).
  /// Off by default, matching the paper-era simulations.
  bool delayed_acks = false;
  sim::Time delayed_ack_timeout = sim::Time::ms(200);
};

/// Receiver for one flow. Emits cumulative ACKs echoing each segment's
/// timestamp (for RTT measurement) and its EFCI bit (for the EFCI
/// mechanism).
class TcpSink final : public PacketSink {
 public:
  using Emitter = std::function<void(Packet)>;

  TcpSink(sim::Simulator& sim, int flow, Emitter emit_ack,
          TcpSinkOptions options = {});

  TcpSink(const TcpSink&) = delete;
  TcpSink& operator=(const TcpSink&) = delete;

  void receive_packet(Packet packet) override;

  [[nodiscard]] int flow() const { return flow_; }
  /// In-order bytes delivered to the application (the goodput counter).
  [[nodiscard]] std::int64_t delivered_bytes() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_; }
  [[nodiscard]] std::uint64_t out_of_order_segments() const { return ooo_; }
  [[nodiscard]] std::uint64_t duplicate_segments() const { return dups_; }

 private:
  void buffer_segment(std::int64_t start, std::int64_t end);
  void emit_cumulative_ack(const Packet& trigger);
  void flush_delayed_ack();

  sim::Simulator* sim_;
  int flow_;
  Emitter emit_ack_;
  TcpSinkOptions options_;
  bool ack_pending_ = false;
  Packet pending_trigger_{};
  sim::EventId delayed_timer_;
  std::int64_t rcv_nxt_ = 0;
  // Out-of-order byte ranges beyond rcv_nxt_, merged, keyed by start.
  std::map<std::int64_t, std::int64_t> pending_;
  std::uint64_t acks_ = 0;
  std::uint64_t ooo_ = 0;
  std::uint64_t dups_ = 0;
};

}  // namespace phantom::tcp
