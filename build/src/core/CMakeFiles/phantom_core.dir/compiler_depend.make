# Empty compiler generated dependencies file for phantom_core.
# This may be replaced when dependencies are built.
