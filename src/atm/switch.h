// Output-queued ATM switch with per-VC routing.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "atm/cell.h"
#include "atm/output_port.h"
#include "atm/policer.h"
#include "sim/simulator.h"

namespace phantom::atm {

/// Stale-VC reaper policy: a VC silent for `timeout` is declared dead
/// by the next periodic sweep. "Silent" means no cell of any kind — a
/// beaten-down but live session still turns RM cells well inside any
/// sane timeout (the Trm ticker bounds its FRM spacing by 100 ms).
struct ReaperConfig {
  sim::Time timeout = sim::Time::ms(100);  ///< silence that means death
  sim::Time period = sim::Time::ms(25);    ///< sweep cadence

  void validate() const;
};

/// A switch is a set of output ports plus a VC routing table. Forward
/// cells (data / FRM) of a VC exit via the VC's forward port; backward
/// RM cells exit via the VC's backward port *after* the forward port's
/// controller has written its feedback into them — this models the
/// standard ABR arrangement where the congestion state of the forward
/// direction is conveyed on the returning RM cells [Sat96].
class Switch final : public CellSink {
 public:
  explicit Switch(sim::Simulator& sim, std::string name = "switch")
      : sim_{&sim}, name_{std::move(name)} {}

  /// Adds an output port; returns its index.
  std::size_t add_port(sim::Rate rate, std::size_t queue_limit, Link link,
                       std::unique_ptr<PortController> controller,
                       QueueDiscipline discipline = QueueDiscipline::kFifo);

  /// Routes a VC: forward cells to `forward_port`, backward RM cells to
  /// `backward_port` (both indices from add_port). A VC may be routed at
  /// most once per switch.
  void route_vc(int vc, std::size_t forward_port, std::size_t backward_port);

  void receive_cell(Cell cell) override;

  [[nodiscard]] OutputPort& port(std::size_t i) { return *ports_.at(i); }
  [[nodiscard]] const OutputPort& port(std::size_t i) const {
    return *ports_.at(i);
  }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Cells that arrived for a VC with no route (counts a modelling bug).
  [[nodiscard]] std::uint64_t unrouted_cells() const { return unrouted_; }

  /// Attaches a UPC policer at this switch's ingress: every forward
  /// cell is GCRA-checked against its forward port's fair-share
  /// estimate before it may enter the port queue. Replaces any policer
  /// already attached.
  void enable_policing(PolicerConfig config);

  /// The attached policer, or nullptr when policing is off.
  [[nodiscard]] Policer* policer() { return policer_.get(); }
  [[nodiscard]] const Policer* policer() const { return policer_.get(); }

  /// RM cells whose ER/CCR fields were clamped on ingest (negative,
  /// NaN, or above the forward link's capacity) — forged or corrupted
  /// feedback the switch refused to propagate into controller state.
  [[nodiscard]] std::uint64_t rm_cells_sanitized() const {
    return rm_sanitized_;
  }

  /// Starts the stale-VC reaper: every `period` the switch sweeps its
  /// per-VC activity timestamps and evicts VCs silent for longer than
  /// `timeout` — policer GCRA state goes, and both the forward and the
  /// backward port controllers get a vc_expired() so session-count
  /// state releases the dead VC's share. The route stays: a reused VC
  /// id simply re-registers on its next cell, with a fresh contract.
  void enable_reaping(ReaperConfig config);

  /// Explicit teardown of one VC's dynamic state (the reaper's eviction
  /// path, callable directly when the caller *knows* the session is
  /// gone rather than inferring it from silence). Returns whether any
  /// state existed.
  bool evict_vc(int vc);

  /// VCs evicted so far (reaper sweeps + explicit evict_vc calls).
  [[nodiscard]] std::uint64_t vcs_reaped() const { return vcs_reaped_; }
  /// VCs with a live activity timestamp (seen and not yet evicted).
  [[nodiscard]] std::size_t active_vcs() const { return last_activity_.size(); }
  [[nodiscard]] bool reaping_enabled() const { return reaping_; }

 private:
  void on_reap_tick();

  /// Clamps hostile RM field values before any controller sees them.
  void sanitize_rm(Cell& cell, sim::Rate link_rate);

  struct Route {
    std::size_t forward_port;
    std::size_t backward_port;
  };

  sim::Simulator* sim_;
  std::string name_;
  std::vector<std::unique_ptr<OutputPort>> ports_;
  std::unordered_map<int, Route> routes_;
  std::uint64_t unrouted_ = 0;
  std::unique_ptr<Policer> policer_;
  std::uint64_t rm_sanitized_ = 0;
  bool reaping_ = false;
  ReaperConfig reaper_config_;
  std::unordered_map<int, sim::Time> last_activity_;
  std::uint64_t vcs_reaped_ = 0;
};

}  // namespace phantom::atm
