file(REMOVE_RECURSE
  "CMakeFiles/atm_switch_test.dir/atm_switch_test.cc.o"
  "CMakeFiles/atm_switch_test.dir/atm_switch_test.cc.o.d"
  "atm_switch_test"
  "atm_switch_test.pdb"
  "atm_switch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atm_switch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
