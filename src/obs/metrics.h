// Unified metrics registry: every component's counters behind one door.
//
// Before this layer each subsystem grew its own stats surface — Switch
// CAC counters, Policer totals, BufferManager discard ladder, per-port
// drop counts — and every experiment/report hand-picked the ones it
// knew about. The Registry inverts that: each component registers its
// metrics once (name, stable id, type, unit, owning component), and
// anything downstream — `phantom_cli --metrics-out`, the generated
// docs/METRICS.md reference, tests — enumerates the registry instead of
// chasing accessors.
//
// The registry is *pull-based*: counters and gauges are sampler
// callbacks reading the component's existing fields, so registration
// adds no per-cell cost anywhere. Histograms are the one push-style
// type (components observe into an obs::Histogram they own). Sampler
// callbacks capture component pointers — the registry must not outlive
// the network it samples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace phantom::obs {

enum class MetricType : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(MetricType type);

/// Identity and documentation of one registered metric.
struct MetricDef {
  /// Unique instance path, e.g. "bottleneck.port0.cells_dropped".
  std::string name;
  /// Stable per-kind id shared by all instances, e.g.
  /// "port.cells_dropped" — the key docs/METRICS.md documents.
  std::string id;
  MetricType type = MetricType::kCounter;
  /// Unit of the sampled value ("cells", "Mb/s", "vcs", "ratio", …).
  std::string unit;
  /// Owning component type, e.g. "OutputPort".
  std::string component;
  /// One-line description.
  std::string help;
};

/// Fixed-bucket histogram (push-style: the owning component calls
/// observe()). Bucket `i` counts observations <= bounds[i]; one
/// implicit overflow bucket catches the rest.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// The registry. Components add metrics at wiring time; snapshots
/// enumerate every metric sorted by name, so two snapshots of the same
/// simulation state are byte-identical.
class Registry {
 public:
  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  /// All add_* calls throw std::invalid_argument on a duplicate name.
  void add_counter(MetricDef def, CounterFn sample);
  void add_gauge(MetricDef def, GaugeFn sample);
  /// `hist` must outlive the registry.
  void add_histogram(MetricDef def, const Histogram* hist);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Every registered definition, sorted by name.
  [[nodiscard]] std::vector<const MetricDef*> defs() const;

  /// One snapshot object: {"time_ns":…,"metrics":[{…,"value":…},…]}.
  /// Single line (no embedded newlines), so a file of periodic
  /// snapshots is valid JSONL.
  [[nodiscard]] std::string snapshot_json(sim::Time now) const;

  /// Long-format CSV rows "time_ms,name,type,unit,value" (no header;
  /// see csv_header()). Histograms expand to .count / .sum /
  /// .le_<bound> rows.
  [[nodiscard]] std::string snapshot_csv(sim::Time now) const;
  [[nodiscard]] static std::string csv_header();

 private:
  struct Entry {
    MetricDef def;
    CounterFn counter;            // kCounter
    GaugeFn gauge;                // kGauge
    const Histogram* hist = nullptr;  // kHistogram
  };

  void add(Entry entry);
  /// Indices of entries_ sorted by name.
  [[nodiscard]] std::vector<std::size_t> sorted() const;

  std::vector<Entry> entries_;
  std::unordered_set<std::string> names_;
};

}  // namespace phantom::obs
