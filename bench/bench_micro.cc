// Microbenchmarks (google-benchmark): cost of the substrate primitives.
// These bound the simulator's capacity and show the controller's O(1)
// per-event cost — the "constant space, constant time" implementation
// claim.
#include <benchmark/benchmark.h>

#include "atm/cell.h"
#include "core/phantom_controller.h"
#include "core/residual_filter.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "tcp/tcp_sink.h"

namespace {

using namespace phantom;
using sim::Rate;
using sim::Time;

void BM_EventQueueSchedulePop(benchmark::State& state) {
  sim::EventQueue q;
  std::int64_t t = 0;
  for (auto _ : state) {
    q.schedule(Time::ns(t += 7), [] {});
    if (q.size() > 1000) q.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueSchedulePop);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  // Cost of a full schedule->dispatch cycle with a self-rescheduling
  // event, the hot path of every model.
  sim::Simulator sim;
  std::uint64_t count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.schedule(Time::ns(10), tick);
  };
  sim.schedule(Time::ns(10), tick);
  Time horizon = Time::zero();
  for (auto _ : state) {
    horizon += Time::us(10);  // 1000 events per iteration
    sim.run_until(horizon);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_ResidualFilterUpdate(benchmark::State& state) {
  core::ResidualFilter filter{Rate::mbps(150), core::PhantomConfig{}};
  double load = 0;
  for (auto _ : state) {
    load = load > 140e6 ? 0 : load + 1e6;
    benchmark::DoNotOptimize(filter.update(Rate::bps(load)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResidualFilterUpdate);

void BM_PhantomBackwardRm(benchmark::State& state) {
  sim::Simulator sim;
  core::PhantomController ctl{sim, Rate::mbps(150)};
  atm::Cell brm = atm::Cell::forward_rm(1, Rate::mbps(10), Rate::mbps(150));
  brm.kind = atm::CellKind::kBackwardRm;
  for (auto _ : state) {
    brm.er = Rate::mbps(150);
    ctl.on_backward_rm(brm, 10);
    benchmark::DoNotOptimize(brm.er);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PhantomBackwardRm);

void BM_TcpSinkInOrder(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t acks = 0;
  tcp::TcpSink sink{sim, 1, [&acks](tcp::Packet) { ++acks; }};
  std::int64_t seq = 0;
  for (auto _ : state) {
    sink.receive_packet(tcp::Packet::data(1, seq, 512));
    seq += 512;
  }
  benchmark::DoNotOptimize(acks);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcpSinkInOrder);

}  // namespace

BENCHMARK_MAIN();
