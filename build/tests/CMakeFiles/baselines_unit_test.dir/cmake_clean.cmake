file(REMOVE_RECURSE
  "CMakeFiles/baselines_unit_test.dir/baselines_unit_test.cc.o"
  "CMakeFiles/baselines_unit_test.dir/baselines_unit_test.cc.o.d"
  "baselines_unit_test"
  "baselines_unit_test.pdb"
  "baselines_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
