# Empty dependencies file for bench_tab_comparison.
# This may be replaced when dependencies are built.
