file(REMOVE_RECURSE
  "libphantom_sim.a"
)
