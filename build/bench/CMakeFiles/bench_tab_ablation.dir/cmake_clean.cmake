file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_ablation.dir/bench_tab_ablation.cc.o"
  "CMakeFiles/bench_tab_ablation.dir/bench_tab_ablation.cc.o.d"
  "bench_tab_ablation"
  "bench_tab_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
