// Supervised, process-isolated chaos search: crash containment, triage,
// parallel determinism, checkpoint round-trips and resume.
#include <gtest/gtest.h>

#include <signal.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "chaos/search.h"
#include "chaos/supervisor.h"
#include "chaos/triage.h"

namespace phantom {
namespace {

using sim::Time;

chaos::ScenarioSpec smoke_spec() {
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  return spec;
}

int g_prepare_calls = 0;

// The tier-1 crash-containment contract: a trial whose prepare hook
// SIGSEGVs must surface as a structured kProcessCrash — signal name and
// all — while the search completes every remaining trial and triage
// folds the repeats into one failure class.
TEST(SupervisorTest, CrashingPrepareHookIsContainedAndTriaged) {
  auto spec = smoke_spec();
  chaos::SearchOptions opt;
  opt.trials = 3;
  opt.seed = 11;
  opt.max_failures = 10;
  opt.shrink = false;
  opt.isolate = true;
  opt.jobs = 2;
  g_prepare_calls = 0;
  // Call #1 is the in-process baseline; every later call happens inside
  // a forked trial child (which inherits the counter at 1) and dies
  // there.
  opt.trial.prepare = [](sim::Simulator&, topo::AbrNetwork&) {
    if (++g_prepare_calls > 1) ::raise(SIGSEGV);
  };

  const auto report = chaos::run_search(spec, opt);

  // Sanitizer runtimes intercept the SIGSEGV and exit with their own
  // code instead of dying by signal; containment and triage must hold
  // either way, the signal-name assertions only in plain builds.
  const bool plain_build = chaos::address_space_limit_supported();
  EXPECT_EQ(report.trials_run, 3) << "a crash stopped the search early";
  EXPECT_FALSE(report.interrupted);
  ASSERT_EQ(report.failures.size(), 3u);
  for (const auto& f : report.failures) {
    EXPECT_EQ(f.result.verdict, chaos::Verdict::kProcessCrash);
    if (plain_build) {
      EXPECT_EQ(f.result.crash_signal, "SIGSEGV");
      EXPECT_NE(f.result.detail.find("SIGSEGV"), std::string::npos)
          << f.result.detail;
    }
  }
  ASSERT_EQ(report.classes.size(), 1u) << "triage split one bug into classes";
  EXPECT_EQ(report.classes.front().trials.size(), 3u);
  if (plain_build) {
    EXPECT_EQ(report.classes.front().signal, "SIGSEGV");
    EXPECT_NE(report.to_json().find("\"crash_signal\": \"SIGSEGV\""),
              std::string::npos);
  }
}

// The determinism contract behind --jobs: a fixed seed renders the
// identical report bytes serial, parallel, and without isolation.
TEST(SupervisorTest, ReportBytesIdenticalAcrossJobsAndIsolation) {
  const auto spec = smoke_spec();
  chaos::SearchOptions opt;
  opt.trials = 8;
  opt.seed = 3;
  opt.isolate = true;
  opt.jobs = 1;
  const auto serial = chaos::run_search(spec, opt);
  EXPECT_TRUE(serial.clean()) << serial.to_json();

  opt.jobs = 4;
  const auto parallel = chaos::run_search(spec, opt);

  chaos::SearchOptions plain = opt;
  plain.isolate = false;
  plain.jobs = 1;
  const auto in_process = chaos::run_search(spec, plain);

  EXPECT_EQ(serial.to_json(), parallel.to_json());
  EXPECT_EQ(serial.to_json(), in_process.to_json());
}

TEST(SupervisorTest, CheckpointRowRoundTripsHostileDetails) {
  chaos::TrialResult r;
  r.verdict = chaos::Verdict::kProcessCrash;
  r.detail = "quote \" backslash \\ newline \n tab \t";
  r.events = 123456789;
  r.violations = 3;
  r.reconverge_latency = Time::ns(987654321);
  r.settled_share_mbps = 0.1 + 0.2;  // needs %.17g to round-trip
  r.peak_queue_cells = 17.25;
  r.crash_signal = "SIGSEGV";
  r.stderr_tail = "ASan says \"boom\" at 0x1\npath\\to\\thing";

  const std::string row = chaos::checkpoint_row(42, "restart@120ms:sw0", r);
  EXPECT_EQ(row.find('\n'), std::string::npos) << "JSONL rows are one line";

  std::string plan_spec;
  const auto parsed = chaos::parse_checkpoint_row(row, &plan_spec);
  ASSERT_TRUE(parsed) << row;
  EXPECT_EQ(parsed->first, 42);
  EXPECT_EQ(plan_spec, "restart@120ms:sw0");
  const auto& q = parsed->second;
  EXPECT_EQ(q.verdict, r.verdict);
  EXPECT_EQ(q.detail, r.detail);
  EXPECT_EQ(q.events, r.events);
  EXPECT_EQ(q.violations, r.violations);
  ASSERT_TRUE(q.reconverge_latency);
  EXPECT_EQ(q.reconverge_latency->nanoseconds(), 987654321);
  EXPECT_EQ(q.settled_share_mbps, r.settled_share_mbps);
  EXPECT_EQ(q.peak_queue_cells, r.peak_queue_cells);
  EXPECT_EQ(q.crash_signal, r.crash_signal);
  EXPECT_EQ(q.exit_code, r.exit_code);
  EXPECT_EQ(q.stderr_tail, r.stderr_tail);

  // Engaged-vs-null latency and torn rows both decode safely.
  r.reconverge_latency.reset();
  const auto null_latency =
      chaos::parse_checkpoint_row(chaos::checkpoint_row(0, "p", r));
  ASSERT_TRUE(null_latency);
  EXPECT_FALSE(null_latency->second.reconverge_latency);
  EXPECT_FALSE(chaos::parse_checkpoint_row(row.substr(0, row.size() / 2)));
}

TEST(SupervisorTest, ResumeSkipsCompletedTrialsAndRejectsMismatch) {
  const auto spec = smoke_spec();
  const std::string path =
      ::testing::TempDir() + "phantom_chaos_resume_test.jsonl";
  std::remove(path.c_str());

  chaos::SearchOptions opt;
  opt.trials = 5;
  opt.seed = 9;
  opt.isolate = true;
  opt.checkpoint = path;
  const auto first = chaos::run_search(spec, opt);
  EXPECT_EQ(first.resumed, 0);
  EXPECT_EQ(first.trials_run, 5);

  // Same search again: everything loads from the checkpoint, nothing
  // re-runs, and the report bytes do not change.
  const auto second = chaos::run_search(spec, opt);
  EXPECT_EQ(second.resumed, 5);
  EXPECT_EQ(first.to_json(), second.to_json());

  // A checkpoint from a different seed is an error, never a silent
  // partial resume.
  chaos::SearchOptions other = opt;
  other.seed = 10;
  EXPECT_THROW((void)chaos::run_search(spec, other), std::runtime_error);
  std::remove(path.c_str());
}

// A crash mid-append leaves a torn final JSONL row. Resume must drop
// the partial row with a warning, keep every intact row, and re-run
// only the trial whose row was lost — ending with the same report as
// an uninterrupted search.
TEST(SupervisorTest, ResumeDropsTruncatedTrailingCheckpointRow) {
  const auto spec = smoke_spec();
  const std::string path =
      ::testing::TempDir() + "phantom_chaos_torn_row_test.jsonl";
  std::remove(path.c_str());

  chaos::SearchOptions opt;
  opt.trials = 5;
  opt.seed = 9;
  opt.isolate = true;
  opt.checkpoint = path;
  const auto first = chaos::run_search(spec, opt);
  EXPECT_EQ(first.trials_run, 5);

  // Tear the last row in half, as a crash between write and flush would.
  std::string contents;
  {
    std::ifstream in{path, std::ios::binary};
    std::stringstream ss;
    ss << in.rdbuf();
    contents = ss.str();
  }
  ASSERT_FALSE(contents.empty());
  ASSERT_EQ(contents.back(), '\n');
  const auto last_line = contents.rfind('\n', contents.size() - 2) + 1;
  const std::size_t row_len = contents.size() - last_line;
  ASSERT_GT(row_len, 2u);
  contents.resize(last_line + row_len / 2);
  {
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << contents;
  }

  ::testing::internal::CaptureStderr();
  const auto second = chaos::run_search(spec, opt);
  const std::string warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(second.resumed, 4) << "intact rows must all resume";
  EXPECT_EQ(second.trials_run, 5) << "the torn trial must re-run";
  EXPECT_EQ(first.to_json(), second.to_json());
  EXPECT_NE(warning.find("unparseable row"), std::string::npos) << warning;
  EXPECT_NE(warning.find("line 6"), std::string::npos) << warning;

  // A trailing row of outright garbage gets the same treatment.
  {
    std::ofstream out{path, std::ios::binary | std::ios::app};
    out << "{\"trial\": not json at all\n";
  }
  ::testing::internal::CaptureStderr();
  const auto third = chaos::run_search(spec, opt);
  const std::string garbage_warning = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(third.resumed, 5);
  EXPECT_EQ(first.to_json(), third.to_json());
  EXPECT_NE(garbage_warning.find("unparseable row"), std::string::npos)
      << garbage_warning;
  std::remove(path.c_str());
}

TEST(SupervisorTest, TriageMasksVolatileSpecifics) {
  EXPECT_EQ(chaos::normalize_failure_text("addr 0x7f3a12 after 123 events"),
            chaos::normalize_failure_text("addr 0x991b00 after 77 events"));

  chaos::TrialResult a;
  a.verdict = chaos::Verdict::kProcessCrash;
  a.crash_signal = "SIGSEGV";
  a.detail = "trial process killed by SIGSEGV after ~131072 events";
  a.stderr_tail = "ERROR: AddressSanitizer: SEGV on unknown address 0x08";
  chaos::TrialResult b = a;
  b.detail = "trial process killed by SIGSEGV after ~65536 events";
  b.stderr_tail = "ERROR: AddressSanitizer: SEGV on unknown address 0xf0";
  // Same bug, different event counts and fault addresses: one class.
  EXPECT_EQ(chaos::failure_fingerprint(a), chaos::failure_fingerprint(b));

  chaos::TrialResult c = a;
  c.crash_signal = "SIGABRT";
  EXPECT_NE(chaos::failure_fingerprint(a), chaos::failure_fingerprint(c));
}

}  // namespace
}  // namespace phantom
