#include "atm/cell.h"

namespace phantom::atm {

std::string to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kData: return "data";
    case CellKind::kForwardRm: return "FRM";
    case CellKind::kBackwardRm: return "BRM";
  }
  return "?";
}

}  // namespace phantom::atm
