file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_transient.dir/bench_fig_transient.cc.o"
  "CMakeFiles/bench_fig_transient.dir/bench_fig_transient.cc.o.d"
  "bench_fig_transient"
  "bench_fig_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
