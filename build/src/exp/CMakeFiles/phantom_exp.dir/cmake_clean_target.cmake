file(REMOVE_RECURSE
  "libphantom_exp.a"
)
