file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_source_params.dir/bench_tab_source_params.cc.o"
  "CMakeFiles/bench_tab_source_params.dir/bench_tab_source_params.cc.o.d"
  "bench_tab_source_params"
  "bench_tab_source_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_source_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
