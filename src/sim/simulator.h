// The discrete-event simulator driving every model in this library.
//
// The paper's simulations were run in BONeS Designer [ALT94], a commercial
// event-driven simulator that is no longer obtainable; this kernel is the
// functional substitute (see DESIGN.md, "Substitutions"). All protocol
// behaviour lives in the models — the kernel only provides an exact,
// deterministic clock and scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace phantom::sim {

/// Why a guarded run returned (see Simulator::run_guarded).
enum class RunOutcome {
  kDrained,      ///< event queue empty — the model went quiet
  kDeadline,     ///< reached the sim-time deadline with events pending
  kStopped,      ///< stop() was called from a callback
  kEventBudget,  ///< executed max_events without reaching the deadline
  kLivelock,     ///< max_events_per_instant fired without time advancing
};

[[nodiscard]] const char* to_string(RunOutcome o);

/// Budgets for a guarded run. The defaults never trip; a watchdog sets
/// the budgets it cares about. All limits are deterministic (event
/// counts and sim time, never wall clock), so a guarded run is exactly
/// reproducible from the seed.
struct RunGuard {
  Time deadline = Time::max();
  /// Total events this call may execute before giving up.
  std::uint64_t max_events = std::numeric_limits<std::uint64_t>::max();
  /// Events executed at one instant without the clock advancing before
  /// the run is declared livelocked (a model rescheduling itself at
  /// `now()` forever would otherwise wedge the process).
  std::uint64_t max_events_per_instant =
      std::numeric_limits<std::uint64_t>::max();
  /// Crash-safe progress hook: `on_progress(lifetime events_executed)`
  /// fires after every `progress_every` events of this run (0 = never).
  /// The chaos isolation layer streams these counts out of the trial
  /// process, so a later SIGSEGV still reports how far the run got. The
  /// hook must not schedule, cancel or stop — it observes only.
  std::uint64_t progress_every = 0;
  std::function<void(std::uint64_t)> on_progress;
};

/// Single-threaded discrete-event simulator.
///
/// Usage:
///     Simulator sim;
///     sim.schedule(Time::ms(1), [&]{ ... });
///     sim.run_until(Time::sec(10));
///
/// Invariants: `now()` is non-decreasing; events at equal timestamps run
/// in scheduling order; a callback may schedule further events, including
/// at the current instant.
class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_{seed} {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `cb` to run `delay` from now. Negative delays throw
  /// std::logic_error in every build type (a release build must not
  /// silently corrupt the event order).
  EventId schedule(Time delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute simulation time `at`. Throws
  /// std::logic_error if `at` < now().
  EventId schedule_at(Time at, EventQueue::Callback cb);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();

  /// Runs events with timestamp <= `deadline`, then sets now() to
  /// `deadline` (if it is later than the last event). Returns the number
  /// of events executed.
  std::uint64_t run_until(Time deadline);

  /// Runs events under the guard's budgets: executes events with
  /// timestamp <= guard.deadline until the queue drains, the deadline is
  /// reached (now() is then advanced to it), stop() is called, or a
  /// budget trips. The watchdog entry point: a hung or exploding model
  /// becomes a structured outcome instead of a wedged process.
  RunOutcome run_guarded(const RunGuard& guard);

  /// Makes run()/run_until() return after the current event completes.
  void stop() { stopped_ = true; }

  /// Events executed over this simulator's lifetime (all run variants).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  [[nodiscard]] bool pending() const { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return queue_.size(); }
  /// High-water mark of pending events over this simulator's lifetime
  /// (the kernel's memory footprint; see phantom_cli --perf-report).
  [[nodiscard]] std::size_t peak_pending_count() const {
    return queue_.peak_size();
  }

  /// Kernel-owned random stream; models share it so one seed reproduces
  /// an entire run.
  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  EventQueue queue_;
  Time now_ = Time::zero();
  bool stopped_ = false;
  std::uint64_t executed_ = 0;
  Rng rng_;
};

}  // namespace phantom::sim
