// Vegas unfairness and its repair by Phantom's router mechanisms.
//
// The paper's §4 argues that end-host-only schemes cannot guarantee
// fairness: "when two sources that use Vegas get different window
// sizes ... there is no mechanism that would balance them", and mixing
// algorithms is worse (Reno fills the queue that Vegas tries to keep
// empty, starving it). Selective Discard equalizes both cases from the
// router side using only the CR header field.
#include "bench_util.h"

#include "tcp/vegas.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

struct Shares {
  double flow0 = 0, flow1 = 0;
};

Shares run(tcp::SenderKind first, tcp::SenderKind second,
           tcp::PolicyFactory policy) {
  sim::Simulator sim;
  tcp::TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  tcp::TcpTrunkOptions opts;
  opts.queue_limit = 60;
  opts.policy = std::move(policy);
  const auto s = net.add_sink_node(r, opts);
  tcp::FlowOptions f0;
  f0.kind = first;
  tcp::FlowOptions f1;
  f1.kind = second;
  net.add_flow(r, {}, s, f0);
  net.add_flow(r, {}, s, f1);
  net.source(0).start(Time::zero());
  net.source(1).start(Time::sec(1));  // latecomer
  sim.run_until(Time::sec(4));
  std::vector<std::int64_t> base{net.delivered_bytes(0),
                                 net.delivered_bytes(1)};
  sim.run_until(Time::sec(14));
  Shares out;
  out.flow0 = static_cast<double>(net.delivered_bytes(0) - base[0]) * 8 /
              10.0 / 1e6;
  out.flow1 = static_cast<double>(net.delivered_bytes(1) - base[1]) * 8 /
              10.0 / 1e6;
  return out;
}

tcp::PolicyFactory discard() {
  return [](sim::Simulator& sim, Rate rate) {
    return std::make_unique<tcp::SelectiveDiscardPolicy>(sim, rate, 10.0);
  };
}

void row(exp::Table& t, const char* scenario, const Shares& plain,
         const Shares& fixed) {
  const double j_plain =
      stats::jain_index(std::vector<double>{plain.flow0, plain.flow1});
  const double j_fixed =
      stats::jain_index(std::vector<double>{fixed.flow0, fixed.flow1});
  t.add_row({scenario,
             exp::Table::num(plain.flow0) + " / " + exp::Table::num(plain.flow1),
             exp::Table::num(j_plain, 3),
             exp::Table::num(fixed.flow0) + " / " + exp::Table::num(fixed.flow1),
             exp::Table::num(j_fixed, 3)});
}

}  // namespace

int main() {
  exp::print_header("Vegas (extension of §4's discussion)",
                    "end-host-only fairness failures vs Selective Discard");
  exp::Table t{{"flows (first / latecomer)", "drop-tail (Mb/s)", "Jain",
                "+ selective discard", "Jain"}};
  using K = tcp::SenderKind;
  row(t, "Vegas / Vegas", run(K::kVegas, K::kVegas, nullptr),
      run(K::kVegas, K::kVegas, discard()));
  row(t, "Reno / Vegas", run(K::kReno, K::kVegas, nullptr),
      run(K::kReno, K::kVegas, discard()));
  t.print();
  std::printf(
      "\nexpected shapes: Vegas/Vegas splits unevenly and never rebalances\n"
      "(Vegas holds the queue below the discard gate, so the router has\n"
      "nothing to fix — and nothing to break); Reno fills the queue Vegas\n"
      "tries to keep empty and starves it, and Selective Discard narrows\n"
      "that gap substantially without touching the end hosts.\n");

  const Shares rt = run(K::kReno, K::kTahoe, nullptr);
  std::printf(
      "\nReno vs Tahoe under drop-tail (no policy): %.2f / %.2f Mb/s —\n"
      "fast recovery is why Reno displaced Tahoe.\n",
      rt.flow0, rt.flow1);
  return 0;
}
