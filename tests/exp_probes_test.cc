#include "exp/probes.h"

#include <gtest/gtest.h>

#include "exp/factories.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom::exp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

struct Fixture {
  Simulator sim;
  topo::AbrNetwork net{sim, make_factory(Algorithm::kPhantom)};
  topo::AbrNetwork::DestId dest;

  Fixture() {
    const auto sw = net.add_switch("sw");
    dest = net.add_destination(sw, {});
    net.add_session(sw, {}, dest);
    net.add_session(sw, {}, dest);
  }
};

TEST(GoodputProbeTest, MeasuresDeltaSinceMark) {
  Fixture f;
  f.net.start_all(Time::zero(), Time::zero());
  f.sim.run_until(Time::ms(100));
  GoodputProbe probe{f.sim, f.net};
  probe.mark();
  f.sim.run_until(Time::ms(200));
  const auto rates = probe.rates_mbps();
  ASSERT_EQ(rates.size(), 2u);
  // Roughly at the fair share, and definitely excluding the first
  // 100 ms (a cumulative measure would be biased low by the ramp; at
  // ~47.5 the window measure sits well above a 0-200 ms average of the
  // early ramp for session 1... just check a sane band).
  for (const double r : rates) {
    EXPECT_GT(r, 30.0);
    EXPECT_LT(r, 60.0);
  }
  EXPECT_NEAR(probe.total_mbps(), rates[0] + rates[1], 1e-9);
}

TEST(GoodputProbeTest, RemarkRestartsTheWindow) {
  Fixture f;
  f.net.start_all(Time::zero(), Time::zero());
  GoodputProbe probe{f.sim, f.net};
  probe.mark();
  f.sim.run_until(Time::ms(100));
  const double first = probe.total_mbps();
  probe.mark();  // restart
  f.sim.run_until(Time::ms(101));
  const double second = probe.total_mbps();
  EXPECT_GT(first, 0.0);
  // The new 1 ms window contains far fewer cells than the 100 ms one,
  // but expressed as a *rate* both are of the same order; just verify
  // the re-mark did reset the baseline (no cumulative carryover).
  EXPECT_LT(std::abs(second - first), 100.0);
}

TEST(GoodputProbeTest, ZeroWindowYieldsZeroRates) {
  Fixture f;
  GoodputProbe probe{f.sim, f.net};
  probe.mark();
  for (const double r : probe.rates_mbps()) EXPECT_DOUBLE_EQ(r, 0.0);
}

TEST(QueueSamplerTest, SamplesOnConfiguredPeriod) {
  Fixture f;
  QueueSampler sampler{f.sim, f.net.dest_port(f.dest), Time::ms(1)};
  f.net.start_all(Time::zero(), Time::zero());
  f.sim.run_until(Time::ms(50));
  // One sample at t=0 plus one per ms.
  EXPECT_GE(sampler.trace().size(), 50u);
  EXPECT_LE(sampler.trace().size(), 52u);
}

TEST(FairShareSamplerTest, TracksControllerEstimate) {
  Fixture f;
  FairShareSampler sampler{f.sim, f.net.dest_port(f.dest).controller(),
                           Time::ms(1)};
  f.net.start_all(Time::zero(), Time::zero());
  f.sim.run_until(Time::ms(300));
  ASSERT_GT(sampler.trace().size(), 100u);
  // Converged near u*C/3 by the end.
  EXPECT_NEAR(sampler.trace().back().value / 1e6, 47.5, 3.0);
  // First sample is the initial MACR (8.5).
  EXPECT_NEAR(sampler.trace().samples()[0].value / 1e6, 8.5, 0.1);
}

}  // namespace
}  // namespace phantom::exp
