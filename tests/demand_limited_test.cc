// Demand-limited (non-greedy) sessions: solver- and network-level.
#include <gtest/gtest.h>

#include "exp/factories.h"
#include "exp/probes.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using stats::MaxMinSolver;
using topo::AbrNetwork;

TEST(MaxMinDemandTest, BoundedSessionFreezesAtDemand) {
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(90));
  s.add_session({l}, Rate::mbps(10));  // wants only 10
  s.add_session({l});
  s.add_session({l});
  const auto r = s.solve();
  EXPECT_DOUBLE_EQ(r[0].mbits_per_sec(), 10.0);
  EXPECT_DOUBLE_EQ(r[1].mbits_per_sec(), 40.0);  // (90-10)/2
  EXPECT_DOUBLE_EQ(r[2].mbits_per_sec(), 40.0);
}

TEST(MaxMinDemandTest, DemandAboveFairShareIsInert) {
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(90));
  s.add_session({l}, Rate::mbps(80));  // wants more than the fair share
  s.add_session({l});
  s.add_session({l});
  const auto r = s.solve();
  for (const auto& x : r) EXPECT_DOUBLE_EQ(x.mbits_per_sec(), 30.0);
}

TEST(MaxMinDemandTest, CascadedDemands) {
  // Demands met one at a time, each releasing capacity to the rest.
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(100));
  s.add_session({l}, Rate::mbps(5));
  s.add_session({l}, Rate::mbps(15));
  s.add_session({l});
  s.add_session({l});
  const auto r = s.solve();
  EXPECT_DOUBLE_EQ(r[0].mbits_per_sec(), 5.0);
  EXPECT_DOUBLE_EQ(r[1].mbits_per_sec(), 15.0);
  EXPECT_DOUBLE_EQ(r[2].mbits_per_sec(), 40.0);  // (100-20)/2
  EXPECT_DOUBLE_EQ(r[3].mbits_per_sec(), 40.0);
}

TEST(MaxMinDemandTest, DemandsWithMultiHopBottlenecks) {
  MaxMinSolver s;
  const auto a = s.add_link(Rate::mbps(100));
  const auto b = s.add_link(Rate::mbps(30));
  s.add_session({a, b}, Rate::mbps(5));  // long, tiny demand
  s.add_session({a});
  s.add_session({b});
  const auto r = s.solve();
  EXPECT_DOUBLE_EQ(r[0].mbits_per_sec(), 5.0);
  EXPECT_DOUBLE_EQ(r[1].mbits_per_sec(), 95.0);
  EXPECT_DOUBLE_EQ(r[2].mbits_per_sec(), 25.0);
}

TEST(MaxMinDemandTest, RejectsNonPositiveDemand) {
  MaxMinSolver s;
  const auto l = s.add_link(Rate::mbps(100));
  EXPECT_THROW(s.add_session({l}, Rate::zero()), std::invalid_argument);
}

TEST(AbrSourceDemandTest, EffectiveRateIsMinOfAcrAndDemand) {
  Simulator sim;
  struct Counter final : atm::CellSink {
    void receive_cell(atm::Cell) override { ++cells; }
    int cells = 0;
  } sink;
  atm::AbrSource src{sim, 1, atm::AbrParams{},
                     atm::Link{sim, Time::zero(), sink}};
  src.set_demand(Rate::mbps(4.24));  // 10k cells/s
  src.start(Time::zero());
  // Pump ACR well above the demand.
  for (int i = 0; i < 50; ++i) {
    atm::Cell brm = atm::Cell::forward_rm(1, Rate::zero(), Rate::mbps(150));
    brm.kind = atm::CellKind::kBackwardRm;
    src.receive_cell(brm);
  }
  EXPECT_GT(src.acr().mbits_per_sec(), 100.0);
  EXPECT_DOUBLE_EQ(src.effective_rate().mbits_per_sec(), 4.24);
  sim.run_until(Time::ms(100));
  // Paced at the demand, not at ACR: ~1000 cells in 100 ms.
  EXPECT_NEAR(static_cast<double>(sink.cells), 1000.0, 30.0);
}

TEST(DemandIntegrationTest, UnusedShareRedistributedToGreedySessions) {
  // One 10 Mb/s-demand session + two greedy sessions. Phantom measures
  // the *actual* load, so the greedy sessions and the phantom split
  // u*C - 10 three ways: 44.2 Mb/s each.
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  const auto bounded = net.add_session(sw, {}, dest);
  net.add_session(sw, {}, dest);
  net.add_session(sw, {}, dest);
  net.set_session_demand(bounded, Rate::mbps(10));
  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(400));
  probe.mark();
  sim.run_until(Time::ms(600));
  const auto rates = probe.rates_mbps();
  EXPECT_NEAR(rates[0], 10.0, 1.0);
  EXPECT_NEAR(rates[1], (0.95 * 150 - 10) / 3, 4.0);
  EXPECT_NEAR(rates[2], (0.95 * 150 - 10) / 3, 4.0);
  // And the reference solver predicts the same split.
  const auto ref = net.reference_rates(true, 0.95);
  EXPECT_NEAR(ref[0].mbits_per_sec(), 10.0, 1e-9);
  EXPECT_NEAR(ref[1].mbits_per_sec(), (0.95 * 150 - 10) / 3, 1e-6);
}

TEST(DemandIntegrationTest, DemandRaiseReclaimsShare) {
  Simulator sim;
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  const auto s0 = net.add_session(sw, {}, dest);
  net.add_session(sw, {}, dest);
  net.set_session_demand(s0, Rate::mbps(5));
  net.start_all(Time::zero(), Time::zero());
  // Mid-run the application suddenly has unlimited data again.
  sim.schedule_at(Time::ms(300),
                  [&] { net.source(s0).set_demand(Rate::mbps(1000)); });
  sim.run_until(Time::ms(700));
  exp::GoodputProbe probe{sim, net};
  probe.mark();
  sim.run_until(Time::ms(900));
  const auto rates = probe.rates_mbps();
  EXPECT_NEAR(rates[0], 47.5, 5.0);  // back to the greedy equilibrium
  EXPECT_NEAR(rates[1], 47.5, 5.0);
}

}  // namespace
}  // namespace phantom
