// Tunable parameters of the Phantom algorithm.
//
// Defaults follow DESIGN.md §3. Where the paper's OCR dump does not pin a
// value, the default is marked [reconstructed] there, and the ablation
// bench (`bench_tab_ablation`) sweeps it.
#pragma once

#include <stdexcept>

#include "sim/time.h"

namespace phantom::core {

struct PhantomConfig {
  /// Measurement interval Δt: residual bandwidth is accumulated over
  /// fixed windows of this length.
  sim::Time interval = sim::Time::ms(1);

  /// Target utilization u: the controller steers the port toward u * C,
  /// leaving headroom that drains queues ("the amount of unused
  /// bandwidth controls the algorithm").
  double utilization = 0.95;

  /// Base gain when MACR must grow (residual above the phantom's rate).
  double alpha_inc = 1.0 / 16;

  /// Base gain when MACR must shrink; larger than alpha_inc so that
  /// congestion is reacted to faster than spare capacity is claimed.
  double alpha_dec = 1.0 / 4;

  /// Gain h of the Jacobson mean-deviation filter on the residual error.
  double dev_gain = 1.0 / 8;

  /// Noise deadband scale k: the effective gain is
  /// alpha * |err| / (|err| + k * DEV), so errors within the measured
  /// noise produce small steps and genuine load changes produce nearly
  /// the full base gain.
  double noise_scale = 1.0;

  /// Disable to run the fixed-gain ablation.
  bool adaptive_gain = true;

  /// MACR never drops below max(min_macr, min_macr_fraction * u * C).
  /// The absolute floor is the paper's TCR (10 cells/s: sources must
  /// always be able to probe); the relative floor keeps a transient
  /// overshoot from dragging every session's ER to near-zero, which at
  /// large session counts turns into a full-link limit cycle (crash ->
  /// idle -> synchronized ramp -> crash). 1% of target is far below any
  /// fair share for n <= ~100 sessions yet breaks the cycle — see the
  /// 50-session scale tests.
  sim::Rate min_macr = sim::Rate::cells_per_sec(10);
  double min_macr_fraction = 0.01;

  /// Initial MACR; the paper's end systems start at ICR = 8.5 Mb/s and
  /// the controller starts its phantom at the same point.
  sim::Rate initial_macr = sim::Rate::mbps(8.5);

  /// Optional binary backup: set EFCI on queued data cells while the
  /// queue exceeds this many cells. Phantom proper is pure explicit-rate;
  /// the paper's TCP EFCI mechanism (Fig. 11) uses this hook. Set to 0
  /// to disable (default).
  std::size_t efci_queue_threshold = 0;

  /// Explicit-rate mode (default): backward RM cells get
  /// ER := min(ER, MACR). Binary mode (false): ER is left alone and the
  /// controller instead EFCI-marks data cells of an *over-subscribed*
  /// port (offered load above u*C) — the CI-bit mechanism the paper's
  /// footnote mentions ("Following the DECbit [RJ90], the ATM flow
  /// control supports another mechanism using the CI bit"). Binary
  /// feedback only signals increase/decrease, so convergence is slower
  /// and fairness weaker — bench_tab_ablation quantifies the gap.
  bool explicit_rate_mode = true;

  void validate() const {
    if (interval <= sim::Time::zero())
      throw std::invalid_argument{"interval must be positive"};
    if (utilization <= 0.0 || utilization > 1.0)
      throw std::invalid_argument{"utilization must be in (0, 1]"};
    if (alpha_inc <= 0.0 || alpha_inc > 1.0)
      throw std::invalid_argument{"alpha_inc must be in (0, 1]"};
    if (alpha_dec <= 0.0 || alpha_dec > 1.0)
      throw std::invalid_argument{"alpha_dec must be in (0, 1]"};
    if (dev_gain <= 0.0 || dev_gain > 1.0)
      throw std::invalid_argument{"dev_gain must be in (0, 1]"};
    if (noise_scale < 0.0)
      throw std::invalid_argument{"noise_scale must be >= 0"};
    if (min_macr.bits_per_sec() <= 0.0)
      throw std::invalid_argument{"min_macr must be positive"};
    if (min_macr_fraction < 0.0 || min_macr_fraction >= 1.0)
      throw std::invalid_argument{"min_macr_fraction must be in [0, 1)"};
  }
};

}  // namespace phantom::core
