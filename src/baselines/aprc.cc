#include "baselines/aprc.h"

#include <algorithm>
#include <cassert>

namespace phantom::baselines {

AprcController::AprcController(sim::Simulator& sim, sim::Rate link_capacity,
                               AprcConfig config)
    : sim_{&sim},
      config_{config},
      link_bps_{link_capacity.bits_per_sec()},
      macr_{std::min(config.initial_macr.bits_per_sec(), link_bps_)},
      macr_trace_{"aprc.macr"} {
  config_.validate();
  assert(link_bps_ > 0.0);
  macr_trace_.record(sim_->now(), macr_);
  sim_->schedule(config_.growth_interval,
                 sim::bind_member<&AprcController::on_growth_tick>(this));
}

void AprcController::on_cell_accepted(const atm::Cell&, std::size_t queue_len) {
  current_queue_len_ = queue_len;
}

void AprcController::on_growth_tick() {
  congested_ = current_queue_len_ > last_queue_len_;
  last_queue_len_ = current_queue_len_;
  sim_->schedule(config_.growth_interval,
                 sim::bind_member<&AprcController::on_growth_tick>(this));
}

void AprcController::reset() {
  macr_ = std::min(config_.initial_macr.bits_per_sec(), link_bps_);
  last_queue_len_ = 0;
  current_queue_len_ = 0;
  congested_ = false;
  macr_trace_.record(sim_->now(), macr_);
}

void AprcController::warm_restart() {
  reset();
  warm_.begin();
}

void AprcController::on_forward_rm(atm::Cell& cell, std::size_t) {
  if (warm_.open() && warm_.sample(cell.ccr.bits_per_sec())) {
    if (const auto seed = warm_.close()) {
      macr_ = std::clamp(*seed, 0.0, link_bps_);
      warm_.record_seed(macr_);
    }
  } else {
    macr_ += config_.averaging * (cell.ccr.bits_per_sec() - macr_);
    macr_ = std::clamp(macr_, 0.0, link_bps_);
  }
  macr_trace_.record(sim_->now(), macr_);
  note_rate_update(sim_->now());
}

void AprcController::on_backward_rm(atm::Cell& cell, std::size_t queue_len) {
  if (queue_len > config_.very_congested_threshold) {
    cell.er = std::min(cell.er, sim::Rate::bps(config_.mrf * macr_));
    cell.ci = true;
  } else if (congested_ && cell.ccr.bits_per_sec() > config_.dpf * macr_) {
    cell.er = std::min(cell.er, sim::Rate::bps(config_.erf * macr_));
  }
}

}  // namespace phantom::baselines
