#include "tcp/tcp_sink.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace phantom::tcp {
namespace {

using sim::Simulator;
using sim::Time;

struct SinkFixture {
  Simulator sim;
  std::vector<Packet> acks;
  TcpSink sink{sim, 1, [this](Packet p) { acks.push_back(p); }};

  Packet seg(std::int64_t seq, std::int64_t len = 512) {
    return Packet::data(1, seq, len);
  }
};

TEST(TcpSinkTest, InOrderDeliveryAdvancesCumulativeAck) {
  SinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sink.receive_packet(f.seg(512));
  ASSERT_EQ(f.acks.size(), 2u);
  EXPECT_EQ(f.acks[0].ack, 512);
  EXPECT_EQ(f.acks[1].ack, 1024);
  EXPECT_EQ(f.sink.delivered_bytes(), 1024);
}

TEST(TcpSinkTest, GapProducesDuplicateAcks) {
  SinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sink.receive_packet(f.seg(1024));  // hole at 512
  f.sink.receive_packet(f.seg(1536));
  ASSERT_EQ(f.acks.size(), 3u);
  EXPECT_EQ(f.acks[1].ack, 512);
  EXPECT_EQ(f.acks[2].ack, 512);
  EXPECT_EQ(f.sink.out_of_order_segments(), 2u);
}

TEST(TcpSinkTest, FillingHoleReleasesBufferedData) {
  SinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sink.receive_packet(f.seg(1024));
  f.sink.receive_packet(f.seg(1536));
  f.sink.receive_packet(f.seg(512));  // plugs the hole
  EXPECT_EQ(f.acks.back().ack, 2048);
  EXPECT_EQ(f.sink.delivered_bytes(), 2048);
}

TEST(TcpSinkTest, NonAdjacentRangesMergeCorrectly) {
  SinkFixture f;
  f.sink.receive_packet(f.seg(1024));
  f.sink.receive_packet(f.seg(2048));
  f.sink.receive_packet(f.seg(512));   // adjacent to 1024 range
  f.sink.receive_packet(f.seg(0));     // plugs everything up to 1536
  EXPECT_EQ(f.acks.back().ack, 1536);
  f.sink.receive_packet(f.seg(1536));  // plugs the final hole
  EXPECT_EQ(f.acks.back().ack, 2560);
}

TEST(TcpSinkTest, DuplicateSegmentsCountedAndReAcked) {
  SinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sink.receive_packet(f.seg(0));
  EXPECT_EQ(f.sink.duplicate_segments(), 1u);
  EXPECT_EQ(f.acks.back().ack, 512);
}

TEST(TcpSinkTest, EchoesTimestampAndEfci) {
  SinkFixture f;
  Packet p = f.seg(0);
  p.timestamp = Time::ms(42);
  p.efci = true;
  f.sink.receive_packet(p);
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].timestamp, Time::ms(42));
  EXPECT_TRUE(f.acks[0].ack_efci);
}

TEST(TcpSinkTest, IgnoresForeignFlowsAndNonData) {
  SinkFixture f;
  f.sink.receive_packet(Packet::data(2, 0, 512));  // wrong flow
  f.sink.receive_packet(Packet::make_ack(1, 100));
  f.sink.receive_packet(Packet::source_quench(1));
  EXPECT_TRUE(f.acks.empty());
  EXPECT_EQ(f.sink.delivered_bytes(), 0);
}

TEST(TcpSinkTest, RequiresEmitter) {
  Simulator sim;
  EXPECT_THROW((TcpSink{sim, 1, nullptr}), std::invalid_argument);
}

}  // namespace
}  // namespace phantom::tcp
