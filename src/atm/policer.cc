#include "atm/policer.h"

#include <algorithm>

namespace phantom::atm {

std::string to_string(PolicingAction a) {
  switch (a) {
    case PolicingAction::kMonitor: return "monitor";
    case PolicingAction::kTag: return "tag";
    case PolicingAction::kDrop: return "drop";
  }
  return "?";
}

Policer::Verdict Policer::check(const Cell& cell, sim::Rate fair_share,
                                sim::Time now) {
  // Out of scope for UPC: guaranteed-class cells have their own
  // contract, backward RM cells belong to the *reverse* direction's
  // traffic, and a port with no fair-share estimate (uncontrolled) has
  // no reference rate to police against.
  if (cell.high_priority || cell.kind == CellKind::kBackwardRm ||
      fair_share.is_zero()) {
    return Verdict::kPass;
  }

  const sim::Rate allowed =
      std::max(config_.floor, fair_share * config_.headroom);
  const sim::Time increment = allowed.transmission_time(kCellBits);

  VcState& vc = vcs_[cell.vc];
  if (now >= vc.tat - config_.tolerance) {
    // Conforming: push the theoretical arrival time one inter-cell gap
    // past max(now, TAT) — the virtual-scheduling GCRA update.
    vc.tat = std::max(now, vc.tat) + increment;
    ++vc.stats.conforming;
    ++total_.conforming;
    return Verdict::kPass;
  }

  // Non-conforming. The TAT is deliberately *not* advanced: a violator
  // gains no future credit from cells the contract didn't cover.
  ++vc.stats.nonconforming;
  ++total_.nonconforming;
  switch (config_.action) {
    case PolicingAction::kMonitor:
      return Verdict::kPass;
    case PolicingAction::kTag:
      ++vc.stats.tagged;
      ++total_.tagged;
      return Verdict::kTag;
    case PolicingAction::kDrop:
      ++vc.stats.dropped;
      ++total_.dropped;
      return Verdict::kDrop;
  }
  return Verdict::kPass;
}

bool Policer::evict_vc(int vc) {
  if (vcs_.erase(vc) == 0) return false;
  ++evicted_;
  return true;
}

Policer::VcStats Policer::vc_stats(int vc) const {
  const auto it = vcs_.find(vc);
  return it == vcs_.end() ? VcStats{} : it->second.stats;
}

double Policer::violation_rate() const {
  const std::uint64_t checked = cells_checked();
  return checked == 0
             ? 0.0
             : static_cast<double>(total_.nonconforming) /
                   static_cast<double>(checked);
}

double Policer::violation_rate(int vc) const {
  const VcStats s = vc_stats(vc);
  const std::uint64_t checked = s.conforming + s.nonconforming;
  return checked == 0 ? 0.0
                      : static_cast<double>(s.nonconforming) /
                            static_cast<double>(checked);
}

void Policer::register_metrics(obs::Registry& reg, const std::string& prefix) {
  reg.add_counter({prefix + ".cells_checked", "policer.cells_checked",
                   obs::MetricType::kCounter, "cells", "Policer",
                   "cells GCRA-checked at the ingress"},
                  [this] { return cells_checked(); });
  reg.add_counter({prefix + ".cells_conforming", "policer.cells_conforming",
                   obs::MetricType::kCounter, "cells", "Policer",
                   "cells found conforming"},
                  [this] { return total_.conforming; });
  reg.add_counter(
      {prefix + ".cells_nonconforming", "policer.cells_nonconforming",
       obs::MetricType::kCounter, "cells", "Policer",
       "cells found non-conforming"},
      [this] { return total_.nonconforming; });
  reg.add_counter({prefix + ".cells_tagged", "policer.cells_tagged",
                   obs::MetricType::kCounter, "cells", "Policer",
                   "non-conforming cells CLP-tagged (tag mode)"},
                  [this] { return total_.tagged; });
  reg.add_counter({prefix + ".cells_dropped", "policer.cells_dropped",
                   obs::MetricType::kCounter, "cells", "Policer",
                   "non-conforming cells discarded at ingress (drop mode)"},
                  [this] { return total_.dropped; });
  reg.add_counter({prefix + ".vcs_evicted", "policer.vcs_evicted",
                   obs::MetricType::kCounter, "vcs", "Policer",
                   "VC GCRA states evicted (reaper + teardown)"},
                  [this] { return evicted_; });
  reg.add_gauge({prefix + ".tracked_vcs", "policer.tracked_vcs",
                 obs::MetricType::kGauge, "vcs", "Policer",
                 "VCs currently holding GCRA state"},
                [this] { return static_cast<double>(vcs_.size()); });
  reg.add_gauge({prefix + ".violation_rate", "policer.violation_rate",
                 obs::MetricType::kGauge, "ratio", "Policer",
                 "fraction of checked cells found non-conforming"},
                [this] { return violation_rate(); });
}

}  // namespace phantom::atm
