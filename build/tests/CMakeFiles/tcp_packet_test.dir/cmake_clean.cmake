file(REMOVE_RECURSE
  "CMakeFiles/tcp_packet_test.dir/tcp_packet_test.cc.o"
  "CMakeFiles/tcp_packet_test.dir/tcp_packet_test.cc.o.d"
  "tcp_packet_test"
  "tcp_packet_test.pdb"
  "tcp_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
