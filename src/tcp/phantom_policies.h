// The paper's four Phantom mechanisms for TCP routers (§4):
// Selective Discard (Fig. 18), Selective RED, Selective Source Quench,
// and EFCI marking. All compare the rate stamped in the packet header
// (CR) against `utilization_factor * MACR`, where MACR is the same
// constant-space residual-bandwidth filter the ATM controller uses.
#pragma once

#include <memory>

#include "core/phantom_config.h"
#include "core/residual_filter.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "tcp/red_policy.h"
#include "tcp/queue_policy.h"

namespace phantom::tcp {

/// Default Phantom configuration for TCP routers. Two deliberate
/// differences from the ATM defaults, both traceable to the paper's TCP
/// section: the measurement target is the *full* capacity (u = 1.0) and
/// the mechanisms compare CR against utilization_factor * MACR with
/// utilization_factor = 5 (the value the paper's figure captions quote).
/// The algebra: flows pinned at thr = uf * (C - n*thr) sit at
/// thr = uf*C/(1 + n*uf) — for uf = 5 that is the per-flow fair share
/// with 95%+ utilization at n >= 4, while MACR itself stays a *small
/// positive residual* C/(1 + n*uf), so the fair-share signal never
/// collapses when greedy TCP saturates the link.
[[nodiscard]] core::PhantomConfig tcp_default_phantom_config();

/// The paper's "utilization factor" for the TCP mechanisms (Fig. 9/11
/// captions): thresholds are utilization_factor * MACR.
inline constexpr double kTcpUtilizationFactor = 5.0;

/// Adapts a PhantomConfig to TCP timescales: the measurement interval is
/// raised to at least 10 ms (the order of the sources' CR measurement
/// window and their RTTs — a 1 ms MACR would outrun the signal it
/// controls and cause synchronized boom-bust cycles), and the MACR floor
/// is raised to 2% of the target rate so the over-rate test never
/// degenerates into "drop everything". See DESIGN.md "Substitutions".
[[nodiscard]] core::PhantomConfig tcp_tuned(core::PhantomConfig config,
                                            sim::Rate link_capacity);

/// Shared measurement half of every mechanism: counts offered wire bits
/// per Δt and runs the ResidualFilter. One instance per router port.
/// Applies tcp_tuned() to the supplied config.
class PhantomRateMeter {
 public:
  PhantomRateMeter(sim::Simulator& sim, sim::Rate link_capacity,
                   core::PhantomConfig config);

  PhantomRateMeter(const PhantomRateMeter&) = delete;
  PhantomRateMeter& operator=(const PhantomRateMeter&) = delete;

  /// Counts an arriving packet (dropped or not) as offered load.
  void count(const Packet& packet) { bits_ += packet.wire_bits(); }

  [[nodiscard]] sim::Rate macr() const { return filter_.macr(); }
  [[nodiscard]] const sim::Trace& macr_trace() const { return macr_trace_; }

 private:
  void on_interval();

  sim::Simulator* sim_;
  core::PhantomConfig config_;
  sim::Time interval_;
  core::ResidualFilter filter_;
  std::int64_t bits_ = 0;
  sim::Trace macr_trace_;
};

/// Cap on the per-packet policing drop probability (DiscardMode::kPolice).
inline constexpr double kMaxPoliceDropProbability = 0.15;

/// Fraction of the buffer that must be occupied before Selective
/// Discard polices at all. Below the gate there is no congestion to
/// avoid and dropping would only sacrifice utilization; above it, the
/// over-rate sessions (CR > uf * MACR) bear all the pressure. The gate
/// is what lets the mechanism "avoid congestion even in drop tail
/// routers" while leaving well-behaved sessions untouched.
inline constexpr double kDiscardQueueGate = 0.25;

/// How Selective Discard treats an over-rate packet.
enum class DiscardMode {
  /// Drop with probability min(1 - threshold/CR, p_max). Over-rate TCP
  /// flows then see isolated drops (fast retransmit, window halving)
  /// instead of whole-window wipe-outs; the fluid-level behaviour — only
  /// over-rate sessions are penalized, and persistently over-rate flows
  /// are pushed back under the threshold — matches the paper's
  /// description. The probability cap is the RED lesson [FJ93]: small
  /// per-packet drop rates steer TCP; large ones synchronize timeouts.
  /// Default; see DESIGN.md "Substitutions".
  kPolice,
  /// Drop every over-rate packet, the literal reading of Fig. 18. With
  /// windowed Reno sources and a CR that is remeasured only every
  /// cr_interval, this wipes whole windows and collapses goodput into
  /// RTO cycles; kept for the ablation bench.
  kStrict,
};

/// Selective Discard [paper Fig. 18]:
///     on packet arrival:
///         if queue full:                drop            (drop tail)
///         elif CR > uf * MACR:          drop            (selective)
///         else:                         enqueue
/// Keeps drop-tail routers uncongested and unbiased without touching the
/// TCP window machinery at the end hosts.
class SelectiveDiscardPolicy final : public QueuePolicy {
 public:
  SelectiveDiscardPolicy(sim::Simulator& sim, sim::Rate link_capacity,
                         double utilization_factor = kTcpUtilizationFactor,
                         core::PhantomConfig config = tcp_default_phantom_config(),
                         DiscardMode mode = DiscardMode::kPolice);

  Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                     std::size_t queue_limit) override;
  [[nodiscard]] sim::Rate fair_share() const override { return meter_.macr(); }
  [[nodiscard]] std::string name() const override { return "selective-discard"; }
  [[nodiscard]] const PhantomRateMeter& meter() const { return meter_; }
  [[nodiscard]] std::uint64_t selective_drops() const { return drops_; }

 private:
  sim::Simulator* sim_;
  PhantomRateMeter meter_;
  double factor_;
  DiscardMode mode_;
  std::uint64_t drops_ = 0;
};

/// Selective RED: standard RED, but only packets whose CR exceeds
/// uf * MACR are eligible for early drop. Under-share sessions are never
/// penalized, removing RED's residual unfairness.
class SelectiveRedPolicy final : public RedPolicy {
 public:
  SelectiveRedPolicy(sim::Simulator& sim, sim::Rate link_capacity,
                     double utilization_factor = kTcpUtilizationFactor,
                     core::PhantomConfig config = tcp_default_phantom_config(),
                     RedConfig red = {});

  Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                     std::size_t queue_limit) override;
  [[nodiscard]] sim::Rate fair_share() const override { return meter_.macr(); }
  [[nodiscard]] std::string name() const override { return "selective-red"; }
  [[nodiscard]] const PhantomRateMeter& meter() const { return meter_; }

 protected:
  [[nodiscard]] bool eligible(const Packet& packet) const override;

 private:
  PhantomRateMeter meter_;
  double factor_;
};

/// Selective Source Quench: packets are never dropped by the mechanism;
/// instead the router asks for an ICMP Source Quench to be sent to any
/// source running above uf * MACR. Quenches are rate-limited per port
/// (constant space — no per-flow bookkeeping) because SQ traffic itself
/// consumes scarce reverse bandwidth [BP87].
class SelectiveQuenchPolicy final : public QueuePolicy {
 public:
  SelectiveQuenchPolicy(sim::Simulator& sim, sim::Rate link_capacity,
                        double utilization_factor = kTcpUtilizationFactor,
                        sim::Time min_quench_gap = sim::Time::ms(1),
                        core::PhantomConfig config = tcp_default_phantom_config());

  Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                     std::size_t queue_limit) override;
  [[nodiscard]] sim::Rate fair_share() const override { return meter_.macr(); }
  [[nodiscard]] std::string name() const override { return "selective-quench"; }
  [[nodiscard]] std::uint64_t quenches_sent() const { return quenches_; }

 private:
  sim::Simulator* sim_;
  PhantomRateMeter meter_;
  double factor_;
  sim::Time min_gap_;
  sim::Time last_quench_ = sim::Time::ns(-1'000'000'000);
  std::uint64_t quenches_ = 0;
};

/// EFCI marking: data packets of over-rate sessions get the EFCI bit set
/// in their IP header; the receiver echoes it on ACKs and the (modified)
/// source refrains from increasing its window while the bit is observed
/// (the paper's Fig. 11 mechanism).
class EfciMarkPolicy final : public QueuePolicy {
 public:
  EfciMarkPolicy(sim::Simulator& sim, sim::Rate link_capacity,
                 double utilization_factor = kTcpUtilizationFactor,
                 core::PhantomConfig config = tcp_default_phantom_config());

  Verdict on_arrival(const Packet& packet, std::size_t queue_len,
                     std::size_t queue_limit) override;
  [[nodiscard]] sim::Rate fair_share() const override { return meter_.macr(); }
  [[nodiscard]] std::string name() const override { return "efci-mark"; }
  [[nodiscard]] std::uint64_t marks() const { return marks_; }

 private:
  PhantomRateMeter meter_;
  double factor_;
  std::uint64_t marks_ = 0;
};

}  // namespace phantom::tcp
