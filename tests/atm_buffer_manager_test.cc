// Bounded switch cell memory: hard budget, the EPD/PPD/shed degradation
// ladder, MCR frame protection, Choudhury-Hahne port partitioning and
// squeeze-grace accounting.
#include <gtest/gtest.h>

#include <stdexcept>

#include "atm/buffer_manager.h"

namespace phantom::atm {
namespace {

using sim::Rate;
using sim::Time;
using Verdict = BufferManager::Verdict;

/// Cell `idx` (0-based) of an `len`-cell elastic AAL5 frame.
Cell frame_cell(int vc, std::uint32_t frame, std::uint16_t len,
                std::uint16_t idx) {
  Cell c = Cell::data(vc);
  c.frame = frame;
  c.frame_len = len;
  c.eof = idx + 1 == len;
  return c;
}

/// A guaranteed-class cell: bypasses the frame ladder entirely.
Cell hp_cell(int vc) {
  Cell c = Cell::data(vc);
  c.high_priority = true;
  return c;
}

TEST(BufferConfigTest, ValidatesThresholdOrdering) {
  BufferConfig ok;
  EXPECT_NO_THROW(ok.validate());

  BufferConfig bad = ok;
  bad.budget_cells = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.epd_fraction = 1.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.shed_fraction = bad.epd_fraction - 0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = ok;
  bad.alpha = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(BufferManagerTest, EpdRefusesNewElasticFramesAboveThreshold) {
  BufferConfig cfg;
  cfg.budget_cells = 100;  // EPD at 70, shed at 85
  BufferManager bm{cfg};
  const int port = bm.register_port();

  // Fill to the EPD band with guaranteed-class cells (they bypass the
  // ladder, so the fill itself cannot trip it).
  for (int i = 0; i < 75; ++i) {
    ASSERT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kAccept);
  }
  ASSERT_EQ(bm.level(), DegradationLevel::kEarlyDiscard);

  // A new elastic frame is refused whole at its first cell; the later
  // cells of the same frame keep reporting the EPD verdict without
  // inflating the frame counter.
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 4, 0), Time::zero()),
            Verdict::kDropEpd);
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 4, 1), Time::zero()),
            Verdict::kDropEpd);
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 4, 3), Time::zero()),
            Verdict::kDropEpd);
  EXPECT_EQ(bm.frames_epd_discarded(), 1u);
  EXPECT_EQ(bm.worst_level(), DegradationLevel::kEarlyDiscard);

  // With EPD ablated the same arrival is buffered.
  cfg.epd = false;
  BufferManager bare{cfg};
  const int bport = bare.register_port();
  for (int i = 0; i < 75; ++i) {
    ASSERT_EQ(bare.admit(bport, hp_cell(1), Time::zero()), Verdict::kAccept);
  }
  EXPECT_EQ(bare.admit(bport, frame_cell(2, 0, 4, 0), Time::zero()),
            Verdict::kAccept);
}

TEST(BufferManagerTest, ShedRefusesFramesWholeAboveShedThreshold) {
  BufferConfig cfg;
  cfg.budget_cells = 100;
  BufferManager bm{cfg};
  const int port = bm.register_port();
  for (int i = 0; i < 90; ++i) {
    ASSERT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kAccept);
  }
  ASSERT_EQ(bm.level(), DegradationLevel::kShedding);

  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 4, 0), Time::zero()),
            Verdict::kDropShed);
  EXPECT_GE(bm.cells_shed(), 1u);
  EXPECT_EQ(bm.frames_epd_discarded(), 0u) << "shed is not EPD";
}

TEST(BufferManagerTest, PpdDropsDamagedFrameTailButForwardsEom) {
  BufferConfig cfg;
  cfg.budget_cells = 20;           // elastic partition: 18 cells
  cfg.epd_fraction = 0.90;
  cfg.shed_fraction = 0.99;        // keep the ladder out of the way
  cfg.alpha = 100.0;               // and the port threshold too
  BufferManager bm{cfg};
  const int port = bm.register_port();

  // One long elastic frame: cells buffer until the elastic partition is
  // exhausted mid-frame...
  std::uint16_t idx = 0;
  Verdict v = Verdict::kAccept;
  while (v == Verdict::kAccept) {
    v = bm.admit(port, frame_cell(1, 7, 30, idx), Time::zero());
    ++idx;
  }
  EXPECT_EQ(v, Verdict::kDropOverflow);
  EXPECT_EQ(bm.cells_overflow_dropped(), 1u);

  // ...then PPD discards the rest of the tail...
  EXPECT_EQ(bm.admit(port, frame_cell(1, 7, 30, idx), Time::zero()),
            Verdict::kDropPpd);
  EXPECT_EQ(bm.admit(port, frame_cell(1, 7, 30, idx + 1), Time::zero()),
            Verdict::kDropPpd);
  EXPECT_EQ(bm.cells_ppd_discarded(), 2u);

  // ...except the EOM cell, which goes through so the receiver can
  // delimit the corpse.
  EXPECT_EQ(bm.admit(port, frame_cell(1, 7, 30, 29), Time::zero()),
            Verdict::kAccept);
}

TEST(BufferManagerTest, McrTokenBucketProtectsContractedFrames) {
  BufferConfig cfg;
  cfg.budget_cells = 100;
  BufferManager bm{cfg};
  const int port = bm.register_port();
  // 1000 cells/s MCR; contract state starts with two cells of credit.
  bm.set_vc_mcr(2, Rate::cells_per_sec(1000), Time::zero());
  EXPECT_EQ(bm.tracked_vcs(), 1u);

  for (int i = 0; i < 75; ++i) {
    ASSERT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kAccept);
  }
  ASSERT_EQ(bm.level(), DegradationLevel::kEarlyDiscard);

  // A 2-cell frame inside the MCR credit rides through EPD...
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 2, 0), Time::zero()),
            Verdict::kAccept);
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 2, 1), Time::zero()),
            Verdict::kAccept);
  EXPECT_EQ(bm.mcr_protected_cells(), 2u);

  // ...an immediate second frame exceeds the bucket and is EPD'd...
  EXPECT_EQ(bm.admit(port, frame_cell(2, 1, 2, 0), Time::zero()),
            Verdict::kDropEpd);

  // ...and after 2 ms at 1000 cells/s the credit is back.
  EXPECT_EQ(bm.admit(port, frame_cell(2, 2, 2, 0), Time::ms(2)),
            Verdict::kAccept);

  // Elastic traffic from an uncontracted VC stays refused throughout.
  EXPECT_EQ(bm.admit(port, frame_cell(3, 0, 2, 0), Time::ms(2)),
            Verdict::kDropEpd);

  EXPECT_TRUE(bm.evict_vc(2));
  EXPECT_FALSE(bm.evict_vc(2));
  EXPECT_EQ(bm.admit(port, frame_cell(2, 3, 2, 0), Time::ms(4)),
            Verdict::kDropEpd)
      << "an evicted contract no longer protects";
}

TEST(BufferManagerTest, HardBudgetBindsEveryone) {
  BufferConfig cfg;
  cfg.budget_cells = 10;
  BufferManager bm{cfg};
  const int port = bm.register_port();
  bm.set_vc_mcr(1, Rate::mbps(100), Time::zero());

  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(bm.admit(port, hp_cell(9), Time::zero()), Verdict::kAccept);
  }
  ASSERT_EQ(bm.level(), DegradationLevel::kExhausted);

  Cell rm = Cell::forward_rm(1, Rate::mbps(1), Rate::mbps(10));
  EXPECT_EQ(bm.admit(port, rm, Time::zero()), Verdict::kDropOverflow);
  EXPECT_EQ(bm.admit(port, hp_cell(9), Time::zero()), Verdict::kDropOverflow);
  EXPECT_EQ(bm.admit(port, frame_cell(1, 0, 2, 0), Time::zero()),
            Verdict::kDropOverflow)
      << "true exhaustion drops even MCR-protected frames";
  EXPECT_EQ(bm.admit(port, frame_cell(2, 0, 2, 0), Time::zero()),
            Verdict::kDropShed)
      << "exhausted sits above shed on the elastic ladder";
  EXPECT_EQ(bm.worst_level(), DegradationLevel::kExhausted);

  // Departures reopen the ladder from the top.
  for (int i = 0; i < 10; ++i) bm.release(port, hp_cell(9));
  EXPECT_EQ(bm.level(), DegradationLevel::kNormal);
  EXPECT_EQ(bm.cells_in_use(), 0u);
  EXPECT_EQ(bm.peak_cells_in_use(), 10u);
}

TEST(BufferManagerTest, DynamicPortThresholdLeavesRoomForColdPorts) {
  BufferConfig cfg;
  cfg.budget_cells = 90;
  cfg.alpha = 1.0;  // single hot port saturates at budget/2
  cfg.epd_fraction = 0.96;
  cfg.shed_fraction = 0.97;
  BufferManager bm{cfg};
  const int hot = bm.register_port();
  const int cold = bm.register_port();

  int accepted = 0;
  std::uint32_t f = 0;
  while (bm.admit(hot, frame_cell(1, f++, 1, 0), Time::zero()) ==
         Verdict::kAccept) {
    ++accepted;
  }
  // alpha * (budget - in_use) <= in_use at the fixed point budget/2.
  EXPECT_EQ(accepted, 45);
  EXPECT_EQ(bm.cells_in_use(hot), 45u);

  // The other port still gets cells in: the hot port could not strand
  // the whole budget behind one queue.
  EXPECT_EQ(bm.admit(cold, frame_cell(2, 0, 1, 0), Time::zero()),
            Verdict::kAccept);
  EXPECT_EQ(bm.cells_in_use(cold), 1u);
}

TEST(BufferManagerTest, SqueezeGraceShrinksMonotonically) {
  BufferConfig cfg;
  cfg.budget_cells = 100;
  BufferManager bm{cfg};
  const int port = bm.register_port();
  for (int i = 0; i < 80; ++i) {
    ASSERT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kAccept);
  }

  bm.squeeze(0.5);
  EXPECT_EQ(bm.effective_budget(), 50u);
  EXPECT_EQ(bm.grace_cells(), 80u) << "pre-squeeze cells get grace";
  EXPECT_TRUE(bm.within_budget());
  EXPECT_EQ(bm.level(), DegradationLevel::kExhausted);

  // New arrivals are refused while over the squeezed budget...
  EXPECT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kDropOverflow);

  // ...and the grace allowance only ever shrinks as cells drain.
  std::size_t last_grace = bm.grace_cells();
  for (int i = 0; i < 30; ++i) {
    bm.release(port, hp_cell(1));
    EXPECT_LE(bm.grace_cells(), last_grace);
    EXPECT_TRUE(bm.within_budget());
    last_grace = bm.grace_cells();
  }
  EXPECT_EQ(bm.cells_in_use(), 50u);
  EXPECT_EQ(bm.grace_cells(), 0u) << "back under budget: grace is gone";

  bm.unsqueeze();
  EXPECT_EQ(bm.effective_budget(), 100u);
  EXPECT_EQ(bm.admit(port, hp_cell(1), Time::zero()), Verdict::kAccept);

  EXPECT_THROW(bm.squeeze(0.0), std::invalid_argument);
  EXPECT_THROW(bm.squeeze(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace phantom::atm
