// Overload smoke: the ISSUE acceptance scenario. A 100-session setup
// storm against one bottleneck with overload armor on, hit by a
// windowed memory squeeze and a mid-run VC storm, must finish with
// zero invariant violations, nonzero refusal counters, and every
// admitted MCR contract intact.
#include <gtest/gtest.h>

#include <string>

#include "chaos/generator.h"
#include "chaos/scenario.h"
#include "chaos/search.h"
#include "exp/factories.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/invariant_monitor.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Time;
using topo::AbrNetwork;

TEST(OverloadSmokeTest, HundredSessionSqueezeAndStormStayWithinContract) {
  sim::Simulator sim{2026};
  AbrNetwork net{sim, exp::make_factory(exp::Algorithm::kPhantom)};
  const auto sw = net.add_switch("bottleneck");
  const auto dest = net.add_destination(sw);  // 150 Mb/s
  topo::OverloadOptions oo;
  oo.buffer.budget_cells = 2048;
  net.enable_overload_protection(oo);

  // Offer 100 contracted sessions; the MCR booking limit (0.9 * 150 =
  // 135 Mb/s) admits 45 and refuses the rest at setup.
  atm::AbrParams params;
  params.mcr = Rate::mbps(3);
  params.frame_cells = 16;
  std::size_t admitted = 0;
  for (int i = 0; i < 100; ++i) {
    if (net.try_add_session(sw, {}, dest, params).admitted) ++admitted;
  }
  EXPECT_EQ(admitted, 45u);
  EXPECT_EQ(net.cac_totals().refused_mcr_budget, 55u);

  // Squeeze the shared buffer to 40% for 100 ms, then flood the switch
  // with 30 more setup attempts while it is still digesting.
  fault::FaultInjector injector{sim, net};
  fault::FaultPlan plan;
  plan.memsqueeze(Time::ms(250), 0.4, Time::ms(100))
      .vcstorm(Time::ms(300), 30, Time::ms(150));
  injector.apply(plan);

  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::us(50));
  sim.run_until(Time::ms(150));  // past the ICR startup transient
  monitor.enable_mcr_retention_check({});
  sim.run_until(Time::ms(600));
  monitor.check_now();

  EXPECT_TRUE(monitor.violations().empty())
      << monitor.violations().front().invariant << ": "
      << monitor.violations().front().detail;
  EXPECT_GT(net.cac_totals().refused_total(), 55u)
      << "the vc storm must add refusals on top of the setup storm's";
  EXPECT_GT(net.delivered_cells(0), 0u);
  ASSERT_FALSE(injector.log().empty());
}

// The generator's opt-in overload mix only emits memsqueeze / vcstorm
// events, every plan round-trips through its spec, and a short chaos
// search over an armed scenario comes back clean.
TEST(OverloadSmokeTest, GeneratedOverloadPlansRoundTripAndSearchIsClean) {
  chaos::ScenarioSpec spec;
  spec.sessions = 6;
  spec.rate_mbps = 60.0;
  spec.horizon = Time::ms(600);
  spec.overload = true;
  spec.overload_options.buffer.budget_cells = 2048;

  chaos::GenOptions gen;
  gen.overload = true;
  sim::Rng rng{17};
  bool saw_overload_event = false;
  for (int i = 0; i < 40; ++i) {
    const auto plan = chaos::generate_plan(rng, spec, gen);
    EXPECT_EQ(fault::FaultPlan::parse(plan.to_spec()), plan) << plan.to_spec();
    const std::string s = plan.to_spec();
    saw_overload_event |= s.find("memsqueeze") != std::string::npos ||
                          s.find("vcstorm") != std::string::npos;
  }
  EXPECT_TRUE(saw_overload_event)
      << "40 seeds without a single resource-exhaustion event";

  chaos::SearchOptions opt;
  opt.trials = 4;
  opt.seed = 5;
  opt.shrink = false;
  opt.gen = gen;
  const auto report = chaos::run_search(spec, opt);
  EXPECT_TRUE(report.clean()) << report.to_json();
  EXPECT_EQ(report.trials_run, 4);
}

}  // namespace
}  // namespace phantom
