#include "stats/histogram.h"

#include <gtest/gtest.h>

namespace phantom::stats {
namespace {

TEST(HistogramTest, StartsEmpty) {
  Histogram h{10.0, 100};
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(HistogramTest, MeanAndMax) {
  Histogram h{10.0, 100};
  h.add(1.0);
  h.add(2.0);
  h.add(6.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(HistogramTest, QuantilesOfUniformRamp) {
  Histogram h{100.0, 1000};
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i) / 10.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
}

TEST(HistogramTest, OverflowBinCatchesOutliers) {
  Histogram h{10.0, 10};
  for (int i = 0; i < 99; ++i) h.add(1.0);
  h.add(1e9);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_NEAR(h.quantile(0.5), 1.0, 1.1);
  // Outlier quantile reports the binned range's upper bound.
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(HistogramTest, RejectsBadConstructionAndInput) {
  EXPECT_THROW((Histogram{0.0, 10}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 0}), std::invalid_argument);
  Histogram h{1.0, 10};
  EXPECT_THROW(h.add(-0.1), std::invalid_argument);
  EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(HistogramTest, PointMassQuantiles) {
  Histogram h{10.0, 100};
  for (int i = 0; i < 1000; ++i) h.add(4.2);
  EXPECT_NEAR(h.quantile(0.01), 4.2, 0.2);
  EXPECT_NEAR(h.quantile(0.99), 4.2, 0.2);
}

}  // namespace
}  // namespace phantom::stats
