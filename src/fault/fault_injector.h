// Executes a FaultPlan against a running ABR network.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "atm/link.h"
#include "fault/fault_plan.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "topo/abr_network.h"

namespace phantom::fault {

/// One fault transition that actually happened, for the experiment
/// report (faults are experiment inputs; the report records them next to
/// the measured outputs so a run is self-describing).
struct AppliedFault {
  sim::Time time;
  std::string description;
};

/// Resolves a FaultPlan's targets against a topo::AbrNetwork and
/// schedules every fault transition on the simulator clock.
///
/// Target semantics:
///  * trunk  — both directions of the duplex trunk (outage/burst/RM
///             faults sever data *and* the returning RM feedback);
///             rm_blackhole hits only the reverse port (backward RM
///             cells); restart hits the forward port's controller.
///  * dest   — the link feeding the destination endpoint; rm_blackhole
///             hits the endpoint's access link (where turned BRM cells
///             head back); restart hits the destination port's
///             controller.
///  * session — ABR source churn (leave deactivates; join re-activates,
///             or starts a source that was never started).
///
/// The injector must outlive the run: the scheduled events call back
/// into it to record the applied-fault log.
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, topo::AbrNetwork& net)
      : sim_{&sim}, net_{&net} {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// When session-churn targets are validated. Link/controller targets
  /// are always resolved at apply() time (scheduling needs the link
  /// handles); session indices can additionally be checked only when the
  /// event fires, which lets churn-heavy generated plans be applied to a
  /// network that is still adding sessions.
  enum class ValidateMode {
    kEager,         ///< whole plan checked before anything is scheduled
    kAtActivation,  ///< kLeave/kJoin indices checked when the event fires
  };

  /// Schedules every event in `plan`. In kEager mode (the default) all
  /// targets are validated up front and a bad one throws
  /// std::out_of_range before anything is scheduled. In either mode a
  /// kLeave/kJoin whose session index is out of range *when it fires*
  /// throws a descriptive std::out_of_range out of the run — a stale
  /// index fails cleanly instead of corrupting the churn bookkeeping.
  /// Events in the simulator's past throw std::logic_error (the
  /// hardened scheduler refuses past-time scheduling).
  void apply(const FaultPlan& plan, ValidateMode mode = ValidateMode::kEager);

  /// Chronological log of the transitions that have fired so far.
  [[nodiscard]] const std::vector<AppliedFault>& log() const { return log_; }

  /// Attaches the structured event log: apply() records a kFaultArmed
  /// per scheduled event, and every transition records kFaultFired or
  /// kFaultRecovered (the closing half of a windowed fault) alongside
  /// the text log above. The log must outlive the injector's events.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }

  /// Registers the injector's counters into `reg` under `prefix`:
  /// transitions armed (scheduled by apply) and transitions fired.
  void register_metrics(obs::Registry& reg, const std::string& prefix);

 private:
  /// Which half of a fault a record() call reports: the disturbance
  /// itself, or the transition that undoes it.
  enum class Phase { kFire, kRecover };
  /// Link-state blocks a link-level fault acts on (1 for dest targets,
  /// 2 for trunks — forward + reverse).
  [[nodiscard]] std::vector<std::shared_ptr<atm::LinkState>> links_of(
      FaultTarget t) const;
  /// Feedback-direction hops only, for kRmBlackhole: a trunk's reverse
  /// port (which carries nothing but returning RM cells) or the
  /// destination endpoint's access link (where turned BRM cells start
  /// their trip home). Data and forward RM cells never cross these.
  [[nodiscard]] std::vector<std::shared_ptr<atm::LinkState>> reverse_links_of(
      FaultTarget t) const;
  [[nodiscard]] atm::PortController& controller_of(FaultTarget t) const;
  void validate(const FaultEvent& e) const;
  /// Throws std::out_of_range unless session `s` exists right now.
  void check_session_live(std::size_t s, const char* when) const;
  void schedule_event(const FaultEvent& e);
  /// Stores `action` in `armed_` and schedules a pre-bound {this, index}
  /// trampoline to fire it at `at`. Fault closures carry link-handle
  /// vectors and description strings — far beyond the kernel's inline
  /// capture budget — so parking them here keeps every event the kernel
  /// ever sees allocation-free (and the heap-fallback perf counter at
  /// zero) without copying the heavy state per scheduled event.
  void arm(sim::Time at, std::function<void()> action);
  void record(const std::string& description, Phase phase = Phase::kFire);

  sim::Simulator* sim_;
  topo::AbrNetwork* net_;
  std::vector<AppliedFault> log_;
  std::vector<std::function<void()>> armed_;  // one entry per transition
  obs::EventLog* event_log_ = nullptr;
};

}  // namespace phantom::fault
