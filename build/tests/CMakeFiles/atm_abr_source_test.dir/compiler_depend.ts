# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for atm_abr_source_test.
