// End-to-end chaos search: planted regressions are found and shrunk to
// minimal replayable schedules; healthy searches are clean and
// byte-identical across runs.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "chaos/search.h"

namespace phantom {
namespace {

using sim::Time;

/// Planted regression: behaves exactly like the wrapped controller until
/// the first reset(), after which it stops writing backward-RM feedback
/// — a controller that "forgets how to control" after a restart.
class BreaksAfterRestart final : public atm::PortController {
 public:
  explicit BreaksAfterRestart(std::unique_ptr<atm::PortController> inner)
      : inner_{std::move(inner)} {}

  void on_cell_accepted(const atm::Cell& c, std::size_t q) override {
    inner_->on_cell_accepted(c, q);
  }
  void on_cell_dropped(const atm::Cell& c) override {
    inner_->on_cell_dropped(c);
  }
  void on_cell_transmitted(const atm::Cell& c) override {
    inner_->on_cell_transmitted(c);
  }
  void on_forward_rm(atm::Cell& c, std::size_t q) override {
    inner_->on_forward_rm(c, q);
  }
  void on_backward_rm(atm::Cell& c, std::size_t q) override {
    if (!dead_) inner_->on_backward_rm(c, q);
  }
  void reset() override {
    dead_ = true;
    inner_->reset();
  }
  [[nodiscard]] bool mark_efci(std::size_t q) const override {
    return inner_->mark_efci(q);
  }
  [[nodiscard]] sim::Rate fair_share() const override {
    return inner_->fair_share();
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }

 private:
  std::unique_ptr<atm::PortController> inner_;
  bool dead_ = false;
};

chaos::ScenarioSpec smoke_spec() {
  chaos::ScenarioSpec spec;
  spec.rate_mbps = 40.0;
  spec.horizon = Time::ms(600);
  return spec;
}

TEST(SearchTest, FindsAndShrinksAPlantedRegression) {
  auto spec = smoke_spec();
  spec.factory_override = [](sim::Simulator& sim, sim::Rate rate) {
    return std::make_unique<BreaksAfterRestart>(
        exp::make_factory(exp::Algorithm::kPhantom)(sim, rate));
  };
  chaos::SearchOptions opt;
  opt.trials = 100;
  opt.max_failures = 1;
  opt.seed = 1;
  const auto report = chaos::run_search(spec, opt);
  ASSERT_FALSE(report.clean()) << "planted regression not found in "
                               << report.trials_run << " trials";
  const auto& f = report.failures.front();
  // The minimal repro: at most 3 events (in practice the lone restart).
  EXPECT_LE(f.shrunk_plan.events.size(), 3u) << f.shrunk_plan.to_spec();
  EXPECT_EQ(f.shrunk_result.verdict, f.result.verdict)
      << "shrinking changed the failure mode";
  bool has_restart = false;
  for (const auto& e : f.shrunk_plan.events) {
    has_restart |= e.kind == fault::FaultEvent::Kind::kRestart;
  }
  EXPECT_TRUE(has_restart) << f.shrunk_plan.to_spec();

  // The minimized plan replays: parsing its text form and re-running
  // the trial reproduces the oracle verdict from the report.
  const auto replayed = fault::FaultPlan::parse(f.shrunk_plan.to_spec());
  EXPECT_EQ(replayed, f.shrunk_plan);
  const auto base = chaos::run_baseline(spec, opt.seed, opt.trial);
  const auto rerun =
      chaos::run_trial(spec, opt.seed, replayed, opt.trial, &base);
  EXPECT_EQ(rerun.verdict, f.result.verdict);
  EXPECT_EQ(rerun.detail, f.shrunk_result.detail);
}

TEST(SearchTest, HealthyControllerSearchIsCleanAndDeterministic) {
  const auto spec = smoke_spec();
  chaos::SearchOptions opt;
  opt.trials = 25;
  opt.seed = 3;
  const auto a = chaos::run_search(spec, opt);
  EXPECT_TRUE(a.clean()) << a.to_json();
  EXPECT_EQ(a.trials_run, 25);
  EXPECT_EQ(a.passed, 25);

  // Same seed, same spec: the whole report is byte-identical — the
  // anti-flakiness property the harness is built on.
  const auto b = chaos::run_search(spec, opt);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(SearchTest, DifferentSeedsExploreDifferentSchedules) {
  const auto spec = smoke_spec();
  chaos::SearchOptions a;
  a.trials = 1;
  a.seed = 1;
  chaos::SearchOptions b;
  b.trials = 1;
  b.seed = 2;
  // Reach into the generator the same way run_search does: reports with
  // zero failures carry no plans, so compare generated plans directly.
  sim::Rng ra{1};
  sim::Rng rb{2};
  EXPECT_NE(chaos::generate_plan(ra, spec), chaos::generate_plan(rb, spec));
  // And the searches themselves both run clean on the healthy spec.
  EXPECT_TRUE(chaos::run_search(spec, a).clean());
  EXPECT_TRUE(chaos::run_search(spec, b).clean());
}

TEST(SearchTest, ReportJsonCarriesReplayCommands) {
  auto spec = smoke_spec();
  spec.factory_override = [](sim::Simulator& sim, sim::Rate rate) {
    return std::make_unique<BreaksAfterRestart>(
        exp::make_factory(exp::Algorithm::kPhantom)(sim, rate));
  };
  chaos::SearchOptions opt;
  opt.trials = 100;
  opt.max_failures = 1;
  const auto report = chaos::run_search(spec, opt);
  ASSERT_FALSE(report.clean());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"replay\": \"phantom_cli --scenario=bottleneck"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("--fault-plan='"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shrunk_plan\""), std::string::npos) << json;
}

}  // namespace
}  // namespace phantom
