// The seam between the switching substrate and a flow-control algorithm.
//
// Every algorithm the paper studies — Phantom itself and the EPRCA /
// APRC / CAPC baselines of §5 — is a *per-output-port, constant-space*
// controller. The switch notifies the controller about cell-level events
// on its port and consults it when a backward RM cell for a VC routed
// through that port passes by (that is where ER/CI feedback is written).
#pragma once

#include <cstddef>
#include <string>

#include "atm/cell.h"
#include "sim/time.h"

namespace phantom::atm {

/// Flow-control algorithm attached to one switch output port.
///
/// Implementations must use O(1) state (no per-VC tables) to honour the
/// paper's "constant space" class; tests assert sizeof() stays small.
class PortController {
 public:
  virtual ~PortController() = default;

  /// A cell was accepted into the port's queue (queue length includes it).
  virtual void on_cell_accepted(const Cell& cell, std::size_t queue_len) {
    (void)cell;
    (void)queue_len;
  }

  /// A cell arrived but the queue was full.
  virtual void on_cell_dropped(const Cell& cell) { (void)cell; }

  /// A cell finished transmission onto the link.
  virtual void on_cell_transmitted(const Cell& cell) { (void)cell; }

  /// A forward RM cell is transiting this port (EPRCA-family algorithms
  /// learn CCRs here). Called before the cell is queued.
  virtual void on_forward_rm(Cell& cell, std::size_t queue_len) {
    (void)cell;
    (void)queue_len;
  }

  /// A backward RM cell for a VC whose *forward* path uses this port.
  /// This is where the algorithm writes its feedback (reduce `er`, set
  /// `ci`). `queue_len` is the forward port's current queue length.
  virtual void on_backward_rm(Cell& cell, std::size_t queue_len) = 0;

  /// Simulated controller restart: wipe every learned variable back to
  /// its boot value (the fault subsystem's port-controller-restart
  /// fault). Because the algorithms in the paper's constant-space class
  /// keep only O(1) measured state, a restarted controller must relearn
  /// the fair share from measurements alone — the recovery claim the
  /// resilience benches quantify. Default: stateless controller, no-op.
  virtual void reset() {}

  /// Whether a data cell entering the queue should have EFCI set.
  [[nodiscard]] virtual bool mark_efci(std::size_t queue_len) const {
    (void)queue_len;
    return false;
  }

  /// The algorithm's current fair-share estimate (MACR / ERS), traced by
  /// the experiment harness — the quantity the paper's figures plot.
  [[nodiscard]] virtual sim::Rate fair_share() const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// No-op controller for ports that do not run flow control (access
/// links, reverse-direction RM paths).
class NullController final : public PortController {
 public:
  void on_backward_rm(Cell&, std::size_t) override {}
  [[nodiscard]] sim::Rate fair_share() const override { return sim::Rate::zero(); }
  [[nodiscard]] std::string name() const override { return "null"; }
};

}  // namespace phantom::atm
