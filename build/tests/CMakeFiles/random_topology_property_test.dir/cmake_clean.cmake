file(REMOVE_RECURSE
  "CMakeFiles/random_topology_property_test.dir/random_topology_property_test.cc.o"
  "CMakeFiles/random_topology_property_test.dir/random_topology_property_test.cc.o.d"
  "random_topology_property_test"
  "random_topology_property_test.pdb"
  "random_topology_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_topology_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
