// Fixed-bin histogram with percentile queries.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace phantom::stats {

/// Linear-bin histogram over [0, upper). Values at or above `upper`
/// land in a dedicated overflow bin, so percentiles stay meaningful
/// even with outliers. Used for queueing-delay and queue-occupancy
/// distributions (the p99 columns of the comparison tables).
class Histogram {
 public:
  /// `upper` is the exclusive upper bound of the binned range.
  Histogram(double upper, std::size_t bins);

  void add(double value);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t overflow_count() const { return bins_.back(); }

  /// Value at quantile q in [0, 1], linearly interpolated within the
  /// bin. Overflow-bin hits report `upper` (a lower bound on the true
  /// value). Zero if the histogram is empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  double upper_;
  double bin_width_;
  std::vector<std::uint64_t> bins_;  // last bin = overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace phantom::stats
