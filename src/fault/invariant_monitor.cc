#include "fault/invariant_monitor.h"

#include <cmath>
#include <sstream>
#include <utility>

namespace phantom::fault {

InvariantMonitor::InvariantMonitor(sim::Simulator& sim, topo::AbrNetwork& net,
                                   sim::Time period)
    : sim_{&sim}, net_{&net}, period_{period}, last_check_{sim.now()} {
  if (period_ <= sim::Time::zero()) {
    throw std::invalid_argument{"InvariantMonitor: period must be positive"};
  }
  sim_->schedule(period_, [this] { tick(); });
}

void InvariantMonitor::tick() {
  check_now();
  sim_->schedule(period_, [this] { tick(); });
}

void InvariantMonitor::check_now() {
  ++checks_;
  check_time_monotonic();
  check_conservation();
  check_queue_bounds();
  check_rate_bounds();
  last_check_ = sim_->now();
}

void InvariantMonitor::add(const char* invariant, std::string detail) {
  violations_.push_back(
      InvariantViolation{sim_->now(), invariant, std::move(detail)});
}

void InvariantMonitor::check_time_monotonic() {
  if (sim_->now() < last_check_) {
    add("time-monotonicity", "clock ran backwards: now " +
                                 sim_->now().to_string() + " < previous check " +
                                 last_check_.to_string());
  }
}

void InvariantMonitor::check_conservation() {
  // Every cell ever created must be somewhere. Creation points: ABR
  // sources (data + FRM), CBR sources, and destinations (each turned FRM
  // creates one BRM). A cell is accounted for when it is absorbed at an
  // endpoint (destination data/FRM, source BRM, switch unrouted-bin),
  // dropped at a full port queue, lost on a link, still queued at a
  // port (including the cell being serialized), or in flight on a link.
  std::uint64_t created = 0;
  std::uint64_t absorbed = 0;
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const atm::AbrSource& src = net_->source(s);
    created += src.data_cells_sent() + src.rm_cells_sent();
    absorbed += src.brm_cells_received();
  }
  for (std::size_t c = 0; c < net_->num_cbr_sessions(); ++c) {
    created += net_->cbr_source(c).cells_sent();
  }
  for (std::size_t d = 0; d < net_->num_destinations(); ++d) {
    const atm::AbrDestination& dst = net_->destination(d);
    created += dst.rm_cells_turned();  // each turned FRM births a BRM
    absorbed += dst.total_data_cells() + dst.rm_cells_turned();
  }
  std::uint64_t queued = 0;
  std::uint64_t dropped = 0;
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    absorbed += sw.unrouted_cells();
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      queued += sw.port(p).queue_length();
      dropped += sw.port(p).cells_dropped();
    }
  }
  std::uint64_t lost = 0;
  std::uint64_t in_flight = 0;
  for (const auto& st : net_->link_states()) {
    lost += st->lost();
    in_flight += st->in_flight();
  }
  const std::uint64_t accounted = absorbed + queued + dropped + lost + in_flight;
  if (created != accounted) {
    std::ostringstream out;
    out << "created " << created << " != accounted " << accounted
        << " (absorbed " << absorbed << " + queued " << queued << " + dropped "
        << dropped << " + lost " << lost << " + in-flight " << in_flight << ")";
    add("cell-conservation", out.str());
  }
}

void InvariantMonitor::check_queue_bounds() {
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const atm::OutputPort& port = sw.port(p);
      if (port.queue_length() > port.queue_limit()) {
        add("queue-bounds",
            sw.name() + " port " + std::to_string(p) + ": occupancy " +
                std::to_string(port.queue_length()) + " exceeds limit " +
                std::to_string(port.queue_limit()));
      }
    }
  }
}

void InvariantMonitor::check_rate_bounds() {
  for (std::size_t w = 0; w < net_->num_switches(); ++w) {
    atm::Switch& sw = net_->node(w);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const atm::PortController& ctl = sw.port(p).controller();
      const double share = ctl.fair_share().bits_per_sec();
      if (!std::isfinite(share) || share < 0.0) {
        add("rate-bounds", sw.name() + " port " + std::to_string(p) + " (" +
                               ctl.name() + "): fair share " +
                               std::to_string(share) + " b/s");
      }
    }
  }
  for (std::size_t s = 0; s < net_->num_sessions(); ++s) {
    const atm::AbrSource& src = net_->source(s);
    const double acr = src.acr().bits_per_sec();
    const double pcr = src.params().pcr.bits_per_sec();
    if (!std::isfinite(acr) || acr < 0.0 || acr > pcr) {
      add("rate-bounds", "session " + std::to_string(s) + ": ACR " +
                             std::to_string(acr) + " b/s outside [0, PCR=" +
                             std::to_string(pcr) + "]");
    }
  }
}

}  // namespace phantom::fault
