// Generic-fairness-style configuration (extension): heterogeneous link
// rates, crossing sessions of different path lengths — the stress test
// ATM Forum contributions used to compare explicit-rate schemes. Checks
// Phantom against the phantom-augmented max-min reference, and shows
// ERICA (per-VC state) hitting the plain max-min allocation.
//
//   [s0] ==150==> [s1] ==45==> [s2] ==150==> [s3]
//   A: s0 -> s3 (all three trunks)         D: s1 -> s2 (the narrow link)
//   B: s0 -> s1 (first trunk)              E: s2 -> s3 (last trunk)
//   C: s1 -> s3 (second + third trunks)    F: s0 -> s3 (same as A)
#include "bench_util.h"

using namespace phantom;
using namespace phantom::bench;
using sim::Rate;
using sim::Time;

namespace {

void run(exp::Algorithm alg, bool phantom_reference) {
  sim::Simulator sim;
  topo::AbrNetwork net{sim, exp::make_factory(alg)};
  const auto s0 = net.add_switch("s0");
  const auto s1 = net.add_switch("s1");
  const auto s2 = net.add_switch("s2");
  const auto s3 = net.add_switch("s3");
  topo::TrunkOptions narrow;
  narrow.rate = Rate::mbps(45);
  const auto t01 = net.add_trunk(s0, s1, {});
  const auto t12 = net.add_trunk(s1, s2, narrow);
  const auto t23 = net.add_trunk(s2, s3, {});
  topo::TrunkOptions stub;
  stub.controlled = false;
  stub.rate = Rate::mbps(622);
  const auto d1 = net.add_destination(s1, stub);
  const auto d2 = net.add_destination(s2, stub);
  const auto d3 = net.add_destination(s3, stub);

  net.add_session(s0, {t01, t12, t23}, d3);  // A (3 hops)
  net.add_session(s0, {t01}, d1);            // B
  net.add_session(s1, {t12, t23}, d3);       // C (2 hops)
  net.add_session(s1, {t12}, d2);            // D
  net.add_session(s2, {t23}, d3);            // E
  net.add_session(s0, {t01, t12, t23}, d3);  // F (3 hops, A's twin)

  exp::GoodputProbe probe{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::ms(500));
  probe.mark();
  sim.run_until(Time::ms(900));
  const auto measured = probe.rates_mbps();
  const auto ideal = net.reference_rates(phantom_reference, 0.95);

  std::printf("\n%s (reference: max-min%s)\n", exp::to_string(alg).c_str(),
              phantom_reference ? " + phantom/link" : "");
  exp::Table table{{"session", "path", "measured (Mb/s)", "reference"}};
  const char* names[] = {"A", "B", "C", "D", "E", "F"};
  const char* paths[] = {"150-45-150", "150", "45-150", "45", "150",
                         "150-45-150"};
  std::vector<double> ideal_mbps;
  for (std::size_t s = 0; s < measured.size(); ++s) {
    ideal_mbps.push_back(ideal[s].mbits_per_sec());
    table.add_row({names[s], paths[s], exp::Table::num(measured[s]),
                   exp::Table::num(ideal_mbps.back())});
  }
  table.print();
  std::printf("closeness to reference: %.4f\n",
              stats::maxmin_closeness(measured, ideal_mbps));
}

}  // namespace

int main() {
  exp::print_header("GFC (extension)",
                    "generic fairness configuration, 6 sessions, 3 trunks");
  run(exp::Algorithm::kPhantom, /*phantom_reference=*/true);
  run(exp::Algorithm::kErica, /*phantom_reference=*/false);
  return 0;
}
