#include "atm/switch.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace phantom::atm {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

class Collector final : public CellSink {
 public:
  void receive_cell(Cell cell) override { cells.push_back(cell); }
  std::vector<Cell> cells;
};

/// Controller that stamps feedback so tests can see who processed a BRM.
class StampController final : public PortController {
 public:
  explicit StampController(Rate share) : share_{share} {}
  void on_forward_rm(Cell&, std::size_t) override { ++frm_seen; }
  void on_backward_rm(Cell& cell, std::size_t) override {
    ++brm_seen;
    cell.er = std::min(cell.er, share_);
  }
  [[nodiscard]] Rate fair_share() const override { return share_; }
  [[nodiscard]] std::string name() const override { return "stamp"; }
  int frm_seen = 0, brm_seen = 0;

 private:
  Rate share_;
};

struct SwitchFixture {
  Simulator sim;
  Collector fwd_sink;   // after the forward port
  Collector bwd_sink;   // after the backward port
  Switch sw{sim, "sw0"};
  StampController* fwd_ctl = nullptr;

  SwitchFixture() {
    auto ctl = std::make_unique<StampController>(Rate::mbps(10));
    fwd_ctl = ctl.get();
    const auto fwd = sw.add_port(Rate::mbps(150), 100,
                                 Link{sim, Time::zero(), fwd_sink}, std::move(ctl));
    const auto bwd = sw.add_port(Rate::mbps(150), 100,
                                 Link{sim, Time::zero(), bwd_sink}, nullptr);
    sw.route_vc(1, fwd, bwd);
  }
};

TEST(SwitchTest, ForwardsDataCellsToForwardPort) {
  SwitchFixture f;
  f.sw.receive_cell(Cell::data(1));
  f.sim.run();
  EXPECT_EQ(f.fwd_sink.cells.size(), 1u);
  EXPECT_TRUE(f.bwd_sink.cells.empty());
}

TEST(SwitchTest, ForwardRmPassesControllerThenForwardPort) {
  SwitchFixture f;
  f.sw.receive_cell(Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150)));
  f.sim.run();
  EXPECT_EQ(f.fwd_ctl->frm_seen, 1);
  ASSERT_EQ(f.fwd_sink.cells.size(), 1u);
  EXPECT_EQ(f.fwd_sink.cells[0].kind, CellKind::kForwardRm);
}

TEST(SwitchTest, BackwardRmGetsForwardPortFeedbackAndBackwardRoute) {
  SwitchFixture f;
  Cell brm = Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(150));
  brm.kind = CellKind::kBackwardRm;
  f.sw.receive_cell(brm);
  f.sim.run();
  EXPECT_EQ(f.fwd_ctl->brm_seen, 1);
  ASSERT_EQ(f.bwd_sink.cells.size(), 1u);
  // The forward port's controller clamped ER to its 10 Mb/s share.
  EXPECT_DOUBLE_EQ(f.bwd_sink.cells[0].er.mbits_per_sec(), 10.0);
  EXPECT_TRUE(f.fwd_sink.cells.empty());
}

TEST(SwitchTest, ErOnlyEverDecreases) {
  SwitchFixture f;
  Cell brm = Cell::forward_rm(1, Rate::mbps(5), Rate::mbps(2));
  brm.kind = CellKind::kBackwardRm;
  f.sw.receive_cell(brm);  // controller share 10 Mb/s > ER 2 Mb/s
  f.sim.run();
  ASSERT_EQ(f.bwd_sink.cells.size(), 1u);
  EXPECT_DOUBLE_EQ(f.bwd_sink.cells[0].er.mbits_per_sec(), 2.0);
}

TEST(SwitchTest, UnroutedCellsAreCountedNotCrashed) {
  SwitchFixture f;
  f.sw.receive_cell(Cell::data(99));
  f.sim.run();
  EXPECT_EQ(f.sw.unrouted_cells(), 1u);
  EXPECT_TRUE(f.fwd_sink.cells.empty());
}

TEST(SwitchTest, RejectsDuplicateRoute) {
  SwitchFixture f;
  EXPECT_THROW(f.sw.route_vc(1, 0, 1), std::invalid_argument);
}

TEST(SwitchTest, RejectsBadPortIndex) {
  SwitchFixture f;
  EXPECT_THROW(f.sw.route_vc(2, 5, 1), std::out_of_range);
  EXPECT_THROW(f.sw.route_vc(2, 0, 5), std::out_of_range);
}

TEST(SwitchTest, MultipleVcsShareAPort) {
  SwitchFixture f;
  f.sw.route_vc(2, 0, 1);
  f.sw.receive_cell(Cell::data(1));
  f.sw.receive_cell(Cell::data(2));
  f.sim.run();
  EXPECT_EQ(f.fwd_sink.cells.size(), 2u);
}

TEST(SwitchTest, PortAccessors) {
  SwitchFixture f;
  EXPECT_EQ(f.sw.num_ports(), 2u);
  EXPECT_EQ(f.sw.name(), "sw0");
  EXPECT_EQ(f.sw.port(0).controller().name(), "stamp");
  EXPECT_EQ(f.sw.port(1).controller().name(), "null");
}

}  // namespace
}  // namespace phantom::atm
