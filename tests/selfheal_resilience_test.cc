// The PR's headline resilience claim, as a test: under a *total*
// backward-RM blackhole every algorithm's network keeps all invariants
// green, compliant sources walk themselves down to ICR (the Crm/CDF
// decrease with the ADTF backstop), and once the feedback path heals
// the loop reconverges to its pre-fault operating point within the
// recovery budget the fault-injection PR established (250 ms).
#include <gtest/gtest.h>

#include <string>

#include "exp/factories.h"
#include "exp/probes.h"
#include "fault/fault_injector.h"
#include "fault/invariant_monitor.h"
#include "sim/simulator.h"
#include "stats/recovery.h"
#include "topo/abr_network.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;
using topo::AbrNetwork;
using topo::TrunkOptions;

constexpr int kSessions = 4;
const Time kBlackholeAt = Time::ms(250);
const Time kBlackholeLen = Time::ms(200);
const Time kEnd = Time::ms(800);
// PR-1's reconvergence budget for single-fault recovery.
const Time kRecoveryBudget = Time::ms(250);

class SelfHealResilienceTest : public testing::TestWithParam<exp::Algorithm> {};

TEST_P(SelfHealResilienceTest, TotalFeedbackLossDecaysToIcrAndReconverges) {
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(GetParam())};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  for (int i = 0; i < kSessions; ++i) net.add_session(sw, {}, dest);
  net.enable_reaping();

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.rm_blackhole(fault::dest(0), kBlackholeAt,
                                                 kBlackholeLen, 1.0));
  fault::InvariantMonitor monitor{sim, net};
  exp::FairShareSampler share{sim, net.dest_port(dest).controller()};

  net.start_all(Time::zero(), Time::zero());

  // Just before the blackhole ends: every source has gone Crm forward
  // RM cells without an answer and must have decayed to the ICR floor —
  // none of them is still blasting at the stale pre-fault rate.
  sim.run_until(kBlackholeAt + kBlackholeLen - Time::ms(1));
  const double icr_mbps =
      net.source(0).params().icr.mbits_per_sec();
  for (std::size_t s = 0; s < net.num_sessions(); ++s) {
    const auto& src = net.source(s);
    EXPECT_GT(src.frms_since_brm(),
              static_cast<std::uint64_t>(src.params().crm))
        << "session " << s << " still getting feedback through a 100% "
        << "backward blackhole";
    EXPECT_LE(src.acr().mbits_per_sec(), icr_mbps * 1.01)
        << "session " << s << " holds a stale rate";
  }

  sim.run_until(kEnd);
  monitor.check_now();
  for (const auto& v : monitor.violations()) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }

  // Post-restore reconvergence, judged the way the chaos oracle judges
  // it: the 10 ms-smoothed share re-enters the pre-fault band (15%) and
  // stays there. APRC's instantaneous estimate oscillates by design, so
  // the raw trace would never hold a band even fault-free.
  const double target =
      stats::mean_in_window(share.trace().samples(), Time::ms(150),
                            kBlackholeAt);
  ASSERT_GT(target, 0.0);
  const auto smoothed =
      stats::smooth_series(share.trace().samples(), Time::ms(10));
  const auto reconverge = stats::time_to_reconverge(
      smoothed, kBlackholeAt + kBlackholeLen, target, 0.15);
  ASSERT_TRUE(reconverge.has_value())
      << exp::to_string(GetParam()) << " never reconverged after the "
      << "feedback path healed";
  EXPECT_LE(*reconverge, kRecoveryBudget);
}

TEST_P(SelfHealResilienceTest, DecayAblationTripsStaleRateInvariant) {
  // The --no-feedback-decay counterfactual: identical fault, decay off.
  // Sources freeze at their stale ACR and the monitor must say so —
  // the invariant is judged from the TM 4.0 protocol state, not from
  // the (disabled) decay machinery.
  Simulator sim{1};
  AbrNetwork net{sim, exp::make_factory(GetParam())};
  const auto sw = net.add_switch("sw");
  const auto dest = net.add_destination(sw, {});
  atm::AbrParams params;
  params.feedback_decay = false;
  for (int i = 0; i < kSessions; ++i) net.add_session(sw, {}, dest, params);

  fault::FaultInjector injector{sim, net};
  injector.apply(fault::FaultPlan{}.rm_blackhole(fault::dest(0), kBlackholeAt,
                                                 kBlackholeLen, 1.0));
  fault::InvariantMonitor monitor{sim, net};
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(kBlackholeAt + kBlackholeLen - Time::ms(1));
  monitor.check_now();

  bool stale = false;
  for (const auto& v : monitor.violations()) {
    stale |= v.invariant == "stale-rate";
  }
  EXPECT_TRUE(stale) << "ablated sources held stale rates through a total "
                     << "blackhole without tripping the invariant";
}

std::string selfheal_name(const testing::TestParamInfo<exp::Algorithm>& info) {
  return exp::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SelfHealResilienceTest,
                         testing::Values(exp::Algorithm::kPhantom,
                                         exp::Algorithm::kEprca,
                                         exp::Algorithm::kAprc,
                                         exp::Algorithm::kCapc,
                                         exp::Algorithm::kErica),
                         selfheal_name);

}  // namespace
}  // namespace phantom
