# Empty compiler generated dependencies file for phantom_sim.
# This may be replaced when dependencies are built.
