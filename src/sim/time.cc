#include "sim/time.h"

#include <cmath>
#include <cstdio>

namespace phantom::sim {

std::string Time::to_string() const {
  char buf[48];
  const double ns = static_cast<double>(ns_);
  if (std::llabs(ns_) >= 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.6gs", ns / 1e9);
  } else if (std::llabs(ns_) >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.6gms", ns / 1e6);
  } else if (std::llabs(ns_) >= 1'000) {
    std::snprintf(buf, sizeof buf, "%.6gus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string Rate::to_string() const {
  char buf[48];
  if (std::fabs(bps_) >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.6gMb/s", bps_ / 1e6);
  } else if (std::fabs(bps_) >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.6gKb/s", bps_ / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.6gb/s", bps_);
  }
  return buf;
}

}  // namespace phantom::sim
