file(REMOVE_RECURSE
  "CMakeFiles/tcp_sink_test.dir/tcp_sink_test.cc.o"
  "CMakeFiles/tcp_sink_test.dir/tcp_sink_test.cc.o.d"
  "tcp_sink_test"
  "tcp_sink_test.pdb"
  "tcp_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
