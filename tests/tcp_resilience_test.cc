// Failure injection and delayed ACKs on the TCP substrate.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "tcp/tcp_network.h"
#include "tcp/tcp_sink.h"

namespace phantom::tcp {
namespace {

using sim::Rate;
using sim::Simulator;
using sim::Time;

// ------------------------------------------------------- delayed ACKs

struct DelayedSinkFixture {
  Simulator sim;
  std::vector<Packet> acks;
  TcpSinkOptions opts{.delayed_acks = true,
                      .delayed_ack_timeout = sim::Time::ms(200)};
  TcpSink sink{sim, 1, [this](Packet p) { acks.push_back(p); }, opts};

  Packet seg(std::int64_t seq) { return Packet::data(1, seq, 512); }
};

TEST(DelayedAckTest, SecondSegmentTriggersOneAck) {
  DelayedSinkFixture f;
  f.sink.receive_packet(f.seg(0));
  EXPECT_TRUE(f.acks.empty());  // first segment: ACK withheld
  f.sink.receive_packet(f.seg(512));
  ASSERT_EQ(f.acks.size(), 1u);  // one ACK covering both
  EXPECT_EQ(f.acks[0].ack, 1024);
}

TEST(DelayedAckTest, TimeoutFlushesLoneSegment) {
  DelayedSinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sim.run_until(Time::ms(100));
  EXPECT_TRUE(f.acks.empty());
  f.sim.run_until(Time::ms(250));
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].ack, 512);
}

TEST(DelayedAckTest, OutOfOrderSegmentAcksImmediately) {
  DelayedSinkFixture f;
  f.sink.receive_packet(f.seg(0));     // withheld
  f.sink.receive_packet(f.seg(1024));  // gap -> immediate dup-ack
  ASSERT_EQ(f.acks.size(), 1u);
  EXPECT_EQ(f.acks[0].ack, 512);
  // No stale delayed ACK fires later.
  f.sim.run_until(Time::sec(1));
  EXPECT_EQ(f.acks.size(), 1u);
}

TEST(DelayedAckTest, NoDuplicateAckFromSupersededTimer) {
  DelayedSinkFixture f;
  f.sink.receive_packet(f.seg(0));
  f.sink.receive_packet(f.seg(512));
  f.sim.run_until(Time::sec(1));
  EXPECT_EQ(f.acks.size(), 1u);  // the timer was cancelled, not fired
}

TEST(DelayedAckTest, EndToEndGoodputStillNearCapacity) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  const auto s = net.add_sink_node(r, {});
  TcpSinkOptions delayed;
  delayed.delayed_acks = true;
  net.add_flow(r, {}, s, RenoConfig{}, Rate::mbps(100), Time::ms(1), delayed);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(2));
  const auto at_2s = net.delivered_bytes(0);
  sim.run_until(Time::sec(4));
  const double mbps =
      static_cast<double>(net.delivered_bytes(0) - at_2s) * 8 / 2.0 / 1e6;
  EXPECT_GT(mbps, 7.0);
  // Delayed ACKs roughly halve the ACK count.
  EXPECT_LT(net.sink(0).acks_sent() * 3 / 2,
            static_cast<std::uint64_t>(net.delivered_bytes(0) / 512));
}

// ------------------------------------------------------ loss injection

TEST(TcpLossTest, RecoversFromRandomLoss) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions lossy;
  lossy.loss = 0.01;  // 1% of data packets vanish on the wire
  const auto s = net.add_sink_node(r, lossy);
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(10));
  // Everything delivered so far is in order and substantial.
  EXPECT_GT(net.delivered_bytes(0), 2'000'000);
  EXPECT_GT(net.source(0).fast_retransmits(), 5u);
}

TEST(TcpLossTest, HeavyLossStillMakesProgress) {
  Simulator sim;
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions lossy;
  lossy.loss = 0.10;
  const auto s = net.add_sink_node(r, lossy);
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  sim.run_until(Time::sec(10));
  EXPECT_GT(net.delivered_bytes(0), 100'000);
}

TEST(TcpLossTest, SequenceIntegrityUnderLoss) {
  // delivered_bytes only advances through contiguous data: if anything
  // were mis-reassembled the goodput counter would stall or jump.
  Simulator sim{99};
  TcpNetwork net{sim};
  const auto r = net.add_router("r0");
  TcpTrunkOptions lossy;
  lossy.loss = 0.05;
  const auto s = net.add_sink_node(r, lossy);
  net.add_flow(r, {}, s);
  net.start_all(Time::zero(), Time::zero());
  std::int64_t last = 0;
  for (int t = 1; t <= 20; ++t) {
    sim.run_until(Time::ms(500 * t));
    const auto now = net.delivered_bytes(0);
    EXPECT_GE(now, last);
    EXPECT_EQ(now % 512, 0);  // whole segments only
    last = now;
  }
  EXPECT_GT(last, 0);
}

}  // namespace
}  // namespace phantom::tcp
