// reset() on every algorithm must restore a controller to the state a
// freshly constructed one has: after a warm-up history and a reset, the
// observable rate outputs (ER written into backward RM cells and the
// fair-share estimate) must exactly match a brand-new controller fed
// the identical post-reset sequence. This is what makes the restart
// fault meaningful — a "restarted" controller that secretly remembers
// (or forgets to re-arm) learned state would corrupt every recovery
// measurement built on it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atm/cell.h"
#include "exp/factories.h"
#include "sim/simulator.h"

namespace phantom {
namespace {

using sim::Rate;
using sim::Time;

/// One scripted step of controller input: some data cells, a forward RM
/// carrying a CCR, and a backward RM probe whose resulting ER is the
/// observable output.
struct Step {
  int data_cells;
  double ccr_mbps;
  std::size_t queue_len;
};

const std::vector<Step>& script() {
  static const std::vector<Step> steps = {
      {40, 150.0, 0},  {80, 120.0, 5},   {120, 90.0, 40}, {200, 60.0, 120},
      {30, 45.0, 260}, {10, 30.0, 90},   {60, 75.0, 15},  {90, 110.0, 2},
      {150, 95.0, 55}, {20, 140.0, 400},
  };
  return steps;
}

/// Feeds one step and returns the ER the controller wrote into the
/// backward RM probe.
double feed(atm::PortController& c, const Step& s, int vc) {
  for (int i = 0; i < s.data_cells; ++i) {
    c.on_cell_accepted(atm::Cell::data(vc), s.queue_len + 1);
  }
  atm::Cell frm =
      atm::Cell::forward_rm(vc, Rate::mbps(s.ccr_mbps), Rate::mbps(365));
  c.on_forward_rm(frm, s.queue_len);
  atm::Cell brm = frm;
  brm.kind = atm::CellKind::kBackwardRm;
  c.on_backward_rm(brm, s.queue_len);
  return brm.er.bits_per_sec();
}

class ControllerResetTest : public testing::TestWithParam<exp::Algorithm> {};

TEST_P(ControllerResetTest, ResetEqualsFreshlyConstructed) {
  const auto factory = exp::make_factory(GetParam());
  sim::Simulator sim;
  const Rate link = Rate::mbps(150);
  auto warmed = factory(sim, link);

  // Warm-up: 20 ms of scripted, bursty history (all five algorithms run
  // a 1 ms measurement interval, so this spans 20 ticks).
  int vc = 0;
  for (std::int64_t t = 0; t < 40; ++t) {
    sim.run_until(Time::us(500) * t + Time::us(250));
    (void)feed(*warmed, script()[static_cast<std::size_t>(t) % script().size()],
               vc);
    vc = (vc + 1) % 3;
  }
  sim.run_until(Time::ms(20));  // every interval tick through 20 ms has run

  // The moment under test: restart the warmed controller and construct
  // a pristine one at the same instant (same interval-timer phase).
  warmed->reset();
  auto fresh = factory(sim, link);

  // Identical post-reset input to both; outputs must match exactly at
  // every probe, including across interval ticks.
  for (std::int64_t t = 0; t < 40; ++t) {
    sim.run_until(Time::ms(20) + Time::us(500) * t + Time::us(250));
    const Step& s =
        script()[static_cast<std::size_t>(t * 3 + 1) % script().size()];
    const double er_warmed = feed(*warmed, s, vc);
    const double er_fresh = feed(*fresh, s, vc);
    EXPECT_DOUBLE_EQ(er_warmed, er_fresh) << "probe " << t << " at "
                                          << sim.now().to_string();
    EXPECT_DOUBLE_EQ(warmed->fair_share().bits_per_sec(),
                     fresh->fair_share().bits_per_sec())
        << "probe " << t;
    EXPECT_EQ(warmed->mark_efci(s.queue_len), fresh->mark_efci(s.queue_len))
        << "probe " << t;
    vc = (vc + 2) % 3;
  }
}

std::string reset_name(const testing::TestParamInfo<exp::Algorithm>& info) {
  return exp::to_string(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ControllerResetTest,
                         testing::Values(exp::Algorithm::kPhantom,
                                         exp::Algorithm::kEprca,
                                         exp::Algorithm::kAprc,
                                         exp::Algorithm::kCapc,
                                         exp::Algorithm::kErica),
                         reset_name);

}  // namespace
}  // namespace phantom
